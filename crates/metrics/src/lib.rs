//! Error metrics for approximate circuits (§II-B of the ALSRAC paper).
//!
//! Three statistical metrics are implemented, all defined over a
//! distribution of input patterns:
//!
//! * **Error rate (ER)** — the probability that the approximate output
//!   vector differs from the accurate one in any bit;
//! * **Normalized mean error distance (NMED)** — the mean of
//!   `|approx - exact|` over patterns, normalized by the maximum output
//!   value `2^O - 1`;
//! * **Mean relative error distance (MRED)** — the mean of
//!   `|approx - exact| / max(exact, 1)`.
//!
//! ER applies to any circuit; the distance metrics interpret the output
//! vector as an unsigned integer (LSB-first output order) and therefore
//! require at most 63 outputs.
//!
//! Two evaluation layers are provided: [`compare_output_words`] works on
//! already-simulated output words (the fast path used inside the synthesis
//! flows, fed by `alsrac-sim`'s batch estimation), and [`measure`] /
//! [`measure_auto`] simulate two circuits from scratch (the accuracy
//! measurement used to report results, exhaustive when the input count
//! permits).
//!
//! # Example
//!
//! ```
//! use alsrac_circuits::arith;
//! use alsrac_metrics::{measure_auto, ErrorMetric};
//!
//! # fn main() -> Result<(), alsrac_metrics::MetricsError> {
//! let exact = arith::ripple_carry_adder(4);
//! let approx = exact.clone(); // no approximation yet
//! let m = measure_auto(&exact, &approx, 10_000, 7)?;
//! assert_eq!(m.error_rate, 0.0);
//! assert_eq!(m.value(ErrorMetric::Nmed), Some(0.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error as StdError;
use std::fmt;

use alsrac_aig::Aig;
use alsrac_rt::{derive_indexed, pool, trace, Stream};
use alsrac_sim::{FlipInfluence, OutputWords, PatternBuffer, Simulation};

/// Which error metric a flow is constrained by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorMetric {
    /// Probability of any output bit differing.
    ErrorRate,
    /// Mean error distance normalized by the maximum output value.
    Nmed,
    /// Mean relative error distance.
    Mred,
    /// Worst-case error: the maximum error distance over all inputs
    /// (an absolute bound, not a probability — per Meng et al.'s
    /// maximum-error-constrained ALS).
    Wce,
}

impl ErrorMetric {
    /// Whether evaluating this metric requires decoding output lanes to
    /// integer error distances. [`ErrorMetric::ErrorRate`] only counts
    /// mismatching lanes, so estimators ranking by it can skip the
    /// per-lane decode entirely — the dominant per-candidate cost on
    /// multi-output circuits.
    pub fn needs_distance(self) -> bool {
        !matches!(self, ErrorMetric::ErrorRate)
    }
}

impl fmt::Display for ErrorMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorMetric::ErrorRate => write!(f, "ER"),
            ErrorMetric::Nmed => write!(f, "NMED"),
            ErrorMetric::Mred => write!(f, "MRED"),
            ErrorMetric::Wce => write!(f, "WCE"),
        }
    }
}

/// Errors produced by the measurement entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricsError {
    /// The two circuits differ in input or output arity.
    ArityMismatch {
        /// (inputs, outputs) of the exact circuit.
        exact: (usize, usize),
        /// (inputs, outputs) of the approximate circuit.
        approx: (usize, usize),
    },
    /// A distance metric was requested on a circuit with more than 63
    /// outputs.
    TooManyOutputs {
        /// The output count.
        outputs: usize,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::ArityMismatch { exact, approx } => write!(
                f,
                "circuit arity mismatch: exact {}x{}, approximate {}x{}",
                exact.0, exact.1, approx.0, approx.1
            ),
            MetricsError::TooManyOutputs { outputs } => {
                write!(f, "distance metrics limited to 63 outputs, got {outputs}")
            }
        }
    }
}

impl StdError for MetricsError {}

/// The result of comparing an approximate circuit against an exact one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Number of patterns evaluated.
    pub num_patterns: usize,
    /// Error rate over the evaluated patterns.
    pub error_rate: f64,
    /// NMED, when the output count permits integer decoding.
    pub nmed: Option<f64>,
    /// MRED, when the output count permits integer decoding.
    pub mred: Option<f64>,
    /// Maximum observed error distance, when decodable.
    pub max_error_distance: Option<u64>,
}

impl Measurement {
    /// Returns the value of the requested metric (`None` when a distance
    /// metric is unavailable).
    pub fn value(&self, metric: ErrorMetric) -> Option<f64> {
        match metric {
            ErrorMetric::ErrorRate => Some(self.error_rate),
            ErrorMetric::Nmed => self.nmed,
            ErrorMetric::Mred => self.mred,
            ErrorMetric::Wce => self.max_error_distance.map(|d| d as f64),
        }
    }
}

/// Whether a certificate's value actually carries its guarantee.
///
/// The certification layer runs under a resource budget; when the budget
/// runs out mid-certificate the flow degrades gracefully instead of
/// hanging: the certificate is reported with [`CertStatus::Degraded`] and
/// its `value` falls back to the sampled measurement, which carries **no**
/// SAT guarantee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertStatus {
    /// The certificate holds as stated (exact or (ε, δ)-guaranteed).
    Certified,
    /// The certification budget ran out before the guarantee was
    /// established; the value is the sampled measurement.
    Degraded {
        /// Human-readable cause (e.g. "SAT budget exhausted").
        reason: String,
    },
}

impl CertStatus {
    /// Whether this is [`CertStatus::Certified`].
    pub fn is_certified(&self) -> bool {
        matches!(self, CertStatus::Certified)
    }
}

/// A metric value carrying a *certificate*, not a statistical estimate.
///
/// Produced by the SAT-based certification layer (miter model counting
/// and WCE binary search in the core crate): `value` is either exactly
/// right (`exact`) or within a `(1+ε)` factor with probability `1−δ` —
/// unless `status` is [`CertStatus::Degraded`], in which case the
/// certification budget ran out and `value` is only the sampled
/// measurement. This type is plain data so that report/bench layers can
/// consume certificates without depending on the SAT crate.
#[derive(Clone, Debug, PartialEq)]
pub struct CertifiedMeasurement {
    /// The certified metric.
    pub metric: ErrorMetric,
    /// The certified value: an error rate in `[0, 1]` for
    /// [`ErrorMetric::ErrorRate`], an absolute maximum error distance for
    /// [`ErrorMetric::Wce`].
    pub value: f64,
    /// True when `value` is exact (complete enumeration or binary
    /// search), false for an (ε, δ) hash-counting estimate.
    pub exact: bool,
    /// Tolerance factor of the guarantee (0 when exact).
    pub epsilon: f64,
    /// Failure probability of the guarantee (0 when exact).
    pub delta: f64,
    /// SAT solves spent producing the certificate.
    pub sat_queries: u64,
    /// Whether the guarantee was actually established
    /// ([`CertStatus::Certified`]) or the budget ran out
    /// ([`CertStatus::Degraded`]).
    pub status: CertStatus,
}

impl CertifiedMeasurement {
    /// Whether the certified value satisfies a `<= threshold` constraint.
    ///
    /// For inexact certificates the `(1+ε)` factor is applied
    /// conservatively: the reported value is inflated before comparing,
    /// so `true` still implies the constraint holds with probability at
    /// least `1−δ`. For a [`CertStatus::Degraded`] certificate the same
    /// comparison runs, but the answer carries no SAT guarantee — callers
    /// that need one must check [`Self::status`] first.
    pub fn within(&self, threshold: f64) -> bool {
        if self.exact {
            self.value <= threshold
        } else {
            self.value * (1.0 + self.epsilon) <= threshold
        }
    }
}

/// Compares two sets of output words and computes all metrics.
///
/// `exact` / `approx` are flattened packed output values (see
/// [`OutputWords`]); `masks[w]` selects the valid lanes of word `w` (see
/// [`PatternBuffer::word_mask`]); `num_patterns` is the total valid-lane
/// count.
///
/// Distance metrics are reported only when there are at most 63 outputs.
///
/// # Panics
///
/// Panics if the word shapes disagree.
pub fn compare_output_words(
    exact: &OutputWords,
    approx: &OutputWords,
    masks: &[u64],
    num_patterns: usize,
) -> Measurement {
    if num_patterns == 0 {
        assert_eq!(
            exact.num_outputs(),
            approx.num_outputs(),
            "output count mismatch"
        );
        return Measurement {
            num_patterns: 0,
            error_rate: 0.0,
            nmed: Some(0.0),
            mred: Some(0.0),
            max_error_distance: Some(0),
        };
    }
    count_output_words(exact, approx, masks, num_patterns).finalize(exact.num_outputs())
}

/// Precomputes the per-word union of output differences between `exact`
/// and `base`: `diff[w] = OR over outputs of (exact[po][w] ^ base[po][w])`,
/// plus the total masked mismatch-lane count. One `O(outputs × words)`
/// sweep, done once per circuit snapshot so
/// [`compare_flipped_error_rate`] can charge each candidate only for the
/// words it actually changes.
pub fn base_diff_columns(
    exact: &OutputWords,
    base: &OutputWords,
    masks: &[u64],
) -> (Vec<u64>, u64) {
    assert_eq!(
        exact.num_outputs(),
        base.num_outputs(),
        "output count mismatch"
    );
    let num_outputs = exact.num_outputs();
    let mut columns = vec![0u64; masks.len()];
    let mut error_lanes = 0u64;
    for (w, (slot, &word_mask)) in columns.iter_mut().zip(masks).enumerate() {
        let mut diff = 0u64;
        for po in 0..num_outputs {
            diff |= exact.word(po, w) ^ base.word(po, w);
        }
        *slot = diff;
        error_lanes += (diff & word_mask).count_ones() as u64;
    }
    (columns, error_lanes)
}

/// Error-rate-only comparison of a *virtually flipped* candidate against
/// the exact outputs, in time proportional to the words the flip actually
/// touches rather than `outputs × words`.
///
/// `(base_diff, base_error_lanes)` must come from
/// [`base_diff_columns`]`(exact, base, masks)`. A candidate's outputs
/// differ from `base` only on words where some influence row intersects
/// `change`; on every other word the mismatch column — and hence its lane
/// count — is exactly the precomputed base one. The error count is
/// adjusted per dirty word with integer arithmetic, so `error_rate` is
/// **bit-identical** to the full [`compare_flipped_output_words`] /
/// materialize-then-compare result. Distance metrics are reported as
/// `None`; use this only when ranking by [`ErrorMetric::ErrorRate`]
/// (which never reads them — see [`ErrorMetric::needs_distance`]).
///
/// # Panics
///
/// Panics if the output counts or word shapes disagree.
#[allow(clippy::too_many_arguments)]
pub fn compare_flipped_error_rate(
    exact: &OutputWords,
    base: &OutputWords,
    influence: &FlipInfluence,
    change: &[u64],
    masks: &[u64],
    num_patterns: usize,
    base_diff: &[u64],
    base_error_lanes: u64,
) -> Measurement {
    assert_eq!(
        exact.num_outputs(),
        base.num_outputs(),
        "output count mismatch"
    );
    assert_eq!(
        base.num_outputs(),
        influence.num_outputs(),
        "output count mismatch"
    );
    assert_eq!(base_diff.len(), masks.len(), "word shape mismatch");
    if num_patterns == 0 {
        return Measurement {
            num_patterns: 0,
            error_rate: 0.0,
            nmed: None,
            mred: None,
            max_error_distance: None,
        };
    }
    let num_outputs = exact.num_outputs();
    let touched = influence.touched();
    let any = influence.any_mask();
    let mut error_lanes = base_error_lanes;
    for (w, &word_mask) in masks.iter().enumerate() {
        let cw = change[w];
        if any[w] & cw == 0 {
            continue; // no output flips in this word: base column stands
        }
        // Rebuild this word's mismatch column with the flips applied
        // (rising-cursor merge over the sparse ascending touched set).
        let mut cursor = 0usize;
        let mut diff = 0u64;
        for po in 0..num_outputs {
            let mut a = base.word(po, w);
            if touched.get(cursor).is_some_and(|&t| t as usize == po) {
                a ^= influence.row(cursor)[w] & cw;
                cursor += 1;
            }
            diff |= exact.word(po, w) ^ a;
        }
        error_lanes -= (base_diff[w] & word_mask).count_ones() as u64;
        error_lanes += (diff & word_mask).count_ones() as u64;
    }
    Measurement {
        num_patterns,
        error_rate: error_lanes as f64 / num_patterns as f64,
        nmed: None,
        mred: None,
        max_error_distance: None,
    }
}

/// Compares an exact circuit's output words against a *virtually flipped*
/// approximate circuit: the candidate outputs are
/// `base[po] ^ (influence[po] & change)` (see [`FlipInfluence::apply`]),
/// but instead of materializing them this walks word-major and evaluates
/// one output column per word — each word of `base` and of the influence
/// rows is loaded exactly once and feeds both the error-rate union and the
/// distance decode while still hot.
///
/// This is the fused form of `compare_output_words(exact,
/// influence.apply(base, change), ..)` that the estimator's hot path uses:
/// it skips the per-candidate `OutputWords` clone + second sweep, and its
/// result is bit-identical (same touched rows, and the floating-point
/// distance sums accumulate in the same word-ascending, lane-ascending
/// order — pinned by property tests).
///
/// # Panics
///
/// Panics if the output counts or word shapes disagree.
pub fn compare_flipped_output_words(
    exact: &OutputWords,
    base: &OutputWords,
    influence: &FlipInfluence,
    change: &[u64],
    masks: &[u64],
    num_patterns: usize,
) -> Measurement {
    assert_eq!(
        exact.num_outputs(),
        base.num_outputs(),
        "output count mismatch"
    );
    assert_eq!(
        base.num_outputs(),
        influence.num_outputs(),
        "output count mismatch"
    );
    if num_patterns == 0 {
        return Measurement {
            num_patterns: 0,
            error_rate: 0.0,
            nmed: Some(0.0),
            mred: Some(0.0),
            max_error_distance: Some(0),
        };
    }
    let num_outputs = exact.num_outputs();
    let touched = influence.touched();
    let decode = num_outputs <= 63;
    // One column of candidate output words, rebuilt per word. The single
    // small allocation replaces apply()'s full outputs × words clone.
    let mut approx_col = vec![0u64; num_outputs];
    let mut error_lanes = 0u64;
    let mut sum_ed = 0.0f64;
    let mut sum_red = 0.0f64;
    let mut max_ed = 0u64;
    for (w, &word_mask) in masks.iter().enumerate() {
        let cw = change[w];
        // Influence rows are sparse and ascending by output index: merge
        // against them with one rising cursor instead of a search per
        // output. Untouched outputs pass the base value through.
        let mut cursor = 0usize;
        let mut diff = 0u64;
        for (po, slot) in approx_col.iter_mut().enumerate() {
            let mut a = base.word(po, w);
            if touched.get(cursor).is_some_and(|&t| t as usize == po) {
                a ^= influence.row(cursor)[w] & cw;
                cursor += 1;
            }
            diff |= exact.word(po, w) ^ a;
            *slot = a;
        }
        error_lanes += (diff & word_mask).count_ones() as u64;
        if decode {
            let mut mask = word_mask;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let mut y = 0u64;
                let mut yh = 0u64;
                for (po, &col) in approx_col.iter().enumerate() {
                    y |= (exact.word(po, w) >> lane & 1) << po;
                    yh |= (col >> lane & 1) << po;
                }
                let ed = y.abs_diff(yh);
                max_ed = max_ed.max(ed);
                sum_ed += ed as f64;
                sum_red += ed as f64 / (y.max(1)) as f64;
            }
        }
    }
    PartialCounts {
        patterns: num_patterns,
        error_lanes,
        distance: decode.then_some((sum_ed, sum_red, max_ed)),
    }
    .finalize(num_outputs)
}

/// Raw error counts of one comparison (or one pattern block of a blocked
/// comparison), before normalization by the pattern count.
///
/// Blocked Monte-Carlo measurement computes one `PartialCounts` per
/// pattern block and folds them **in block order** with
/// [`PartialCounts::merge`]; because the block decomposition is
/// independent of the thread count, the folded sums — including the
/// floating-point ones — are bit-identical however many workers ran.
#[derive(Clone, Copy, Debug)]
struct PartialCounts {
    patterns: usize,
    error_lanes: u64,
    /// `(sum_ed, sum_red, max_ed)`, present when outputs decode to ints.
    distance: Option<(f64, f64, u64)>,
}

impl PartialCounts {
    fn merge(self, other: PartialCounts) -> PartialCounts {
        PartialCounts {
            patterns: self.patterns + other.patterns,
            error_lanes: self.error_lanes + other.error_lanes,
            distance: match (self.distance, other.distance) {
                (Some((ed_a, red_a, max_a)), Some((ed_b, red_b, max_b))) => {
                    Some((ed_a + ed_b, red_a + red_b, max_a.max(max_b)))
                }
                _ => None,
            },
        }
    }

    fn finalize(self, num_outputs: usize) -> Measurement {
        let n = self.patterns as f64;
        let (nmed, mred, max_ed) = match self.distance {
            Some((sum_ed, sum_red, max_ed)) => {
                let denom = ((1u64 << num_outputs) - 1) as f64;
                (Some(sum_ed / n / denom), Some(sum_red / n), Some(max_ed))
            }
            None => (None, None, None),
        };
        Measurement {
            num_patterns: self.patterns,
            error_rate: self.error_lanes as f64 / n,
            nmed,
            mred,
            max_error_distance: max_ed,
        }
    }
}

/// Counts error lanes and (when decodable) distance sums over one set of
/// output words. The counting kernel behind [`compare_output_words`].
fn count_output_words(
    exact: &OutputWords,
    approx: &OutputWords,
    masks: &[u64],
    num_patterns: usize,
) -> PartialCounts {
    assert_eq!(
        exact.num_outputs(),
        approx.num_outputs(),
        "output count mismatch"
    );
    let num_outputs = exact.num_outputs();

    // Error rate: union of bit differences across outputs.
    let mut error_lanes = 0u64;
    for (w, &word_mask) in masks.iter().enumerate() {
        let mut diff = 0u64;
        for po in 0..num_outputs {
            diff |= exact.word(po, w) ^ approx.word(po, w);
        }
        error_lanes += (diff & word_mask).count_ones() as u64;
    }

    // Distance metrics: decode each lane to integers.
    let distance = if num_outputs <= 63 {
        let mut sum_ed = 0.0f64;
        let mut sum_red = 0.0f64;
        let mut max_ed = 0u64;
        for (w, &word_mask) in masks.iter().enumerate() {
            let mut mask = word_mask;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let mut y = 0u64;
                let mut yh = 0u64;
                for po in 0..num_outputs {
                    y |= (exact.word(po, w) >> lane & 1) << po;
                    yh |= (approx.word(po, w) >> lane & 1) << po;
                }
                let ed = y.abs_diff(yh);
                max_ed = max_ed.max(ed);
                sum_ed += ed as f64;
                sum_red += ed as f64 / (y.max(1)) as f64;
            }
        }
        Some((sum_ed, sum_red, max_ed))
    } else {
        None
    };

    PartialCounts {
        patterns: num_patterns,
        error_lanes,
        distance,
    }
}

/// Measures an approximate circuit against the exact one on an explicit
/// pattern buffer.
///
/// # Errors
///
/// Returns [`MetricsError::ArityMismatch`] if the circuits disagree in
/// input or output counts.
pub fn measure(
    exact: &Aig,
    approx: &Aig,
    patterns: &PatternBuffer,
) -> Result<Measurement, MetricsError> {
    if exact.num_inputs() != approx.num_inputs() || exact.num_outputs() != approx.num_outputs() {
        return Err(MetricsError::ArityMismatch {
            exact: (exact.num_inputs(), exact.num_outputs()),
            approx: (approx.num_inputs(), approx.num_outputs()),
        });
    }
    let sim_exact = Simulation::new(exact, patterns);
    let sim_approx = Simulation::new(approx, patterns);
    let masks = patterns.word_masks();
    Ok(compare_output_words(
        &sim_exact.output_words(exact),
        &sim_approx.output_words(approx),
        &masks,
        patterns.num_patterns(),
    ))
}

/// Input count at or below which [`measure_auto`] evaluates exhaustively.
pub const EXHAUSTIVE_INPUT_LIMIT: usize = 16;

/// Patterns per block of a blocked Monte-Carlo measurement.
///
/// Small enough that a typical `measure_rounds` splits into several
/// independently simulable blocks, large enough that per-block setup
/// (pattern generation + two simulations) is amortized.
pub const MEASURE_BLOCK_PATTERNS: usize = 8192;

/// Measures on `monte_carlo_rounds` sampled patterns, split into blocks of
/// [`MEASURE_BLOCK_PATTERNS`] simulated in parallel on the
/// [`alsrac_rt::pool`] executor.
///
/// Block `b` draws its patterns from the sub-seed
/// `derive_indexed(seed, Stream::Measurement, b)` and the partial counts
/// are folded in block order, so the result depends only on
/// `(circuits, monte_carlo_rounds, seed)` — never on the thread count.
///
/// # Errors
///
/// Returns [`MetricsError::ArityMismatch`] if the circuits disagree in
/// input or output counts.
pub fn measure_sampled(
    exact: &Aig,
    approx: &Aig,
    monte_carlo_rounds: usize,
    seed: u64,
) -> Result<Measurement, MetricsError> {
    if exact.num_inputs() != approx.num_inputs() || exact.num_outputs() != approx.num_outputs() {
        return Err(MetricsError::ArityMismatch {
            exact: (exact.num_inputs(), exact.num_outputs()),
            approx: (approx.num_inputs(), approx.num_outputs()),
        });
    }
    if monte_carlo_rounds == 0 {
        let empty = OutputWords::zeroed(exact.num_outputs(), 0);
        return Ok(compare_output_words(&empty, &empty, &[], 0));
    }
    let num_blocks = monte_carlo_rounds.div_ceil(MEASURE_BLOCK_PATTERNS);
    let partials = pool::par_indices(num_blocks, |b| {
        // Spans opened here run on pool workers, so the measurement time
        // is attributed to the thread that actually simulated the block.
        let block_span = trace::span("measure_block");
        let size = if b + 1 == num_blocks {
            monte_carlo_rounds - b * MEASURE_BLOCK_PATTERNS
        } else {
            MEASURE_BLOCK_PATTERNS
        };
        let patterns = PatternBuffer::random(
            exact.num_inputs(),
            size,
            derive_indexed(seed, Stream::Measurement, b as u64),
        );
        let sim_exact = Simulation::new(exact, &patterns);
        let sim_approx = Simulation::new(approx, &patterns);
        let counts = count_output_words(
            &sim_exact.output_words(exact),
            &sim_approx.output_words(approx),
            &patterns.word_masks(),
            patterns.num_patterns(),
        );
        trace::add("patterns_simulated", 2 * size as u64);
        block_span.finish();
        counts
    });
    let total = partials
        .into_iter()
        .reduce(PartialCounts::merge)
        .expect("at least one block when rounds > 0");
    Ok(total.finalize(exact.num_outputs()))
}

/// Measures with exhaustive patterns when the circuit has at most
/// [`EXHAUSTIVE_INPUT_LIMIT`] inputs, and `monte_carlo_rounds` seeded random
/// patterns (blocked and parallel, see [`measure_sampled`]) otherwise.
///
/// The paper measures with 10⁷ Monte-Carlo rounds; that is a flag away
/// (pass a larger `monte_carlo_rounds`), the default harness uses fewer for
/// CI speed.
///
/// # Errors
///
/// Propagates [`measure`]'s arity check.
pub fn measure_auto(
    exact: &Aig,
    approx: &Aig,
    monte_carlo_rounds: usize,
    seed: u64,
) -> Result<Measurement, MetricsError> {
    if exact.num_inputs() <= EXHAUSTIVE_INPUT_LIMIT {
        let patterns = PatternBuffer::exhaustive(exact.num_inputs());
        measure(exact, approx, &patterns)
    } else {
        measure_sampled(exact, approx, monte_carlo_rounds, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alsrac_aig::Lit;

    /// 2-bit adder and a broken variant with the MSB stuck at zero.
    fn pair() -> (Aig, Aig) {
        let exact = alsrac_circuits::arith::ripple_carry_adder(2);
        let mut approx = exact.clone();
        // Stuck-at-0 on the carry-out (output index 2).
        approx.set_output_lit(2, Lit::FALSE);
        (exact, approx)
    }

    #[test]
    fn identical_circuits_have_zero_error() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(3);
        let m = measure_auto(&exact, &exact.clone(), 1000, 1).expect("measure");
        assert_eq!(m.error_rate, 0.0);
        assert_eq!(m.nmed, Some(0.0));
        assert_eq!(m.mred, Some(0.0));
        assert_eq!(m.max_error_distance, Some(0));
    }

    #[test]
    fn stuck_carry_error_rate_is_exact() {
        let (exact, approx) = pair();
        // carry-out is 1 for 6 of 16 input pairs (a+b >= 4).
        let m = measure_auto(&exact, &approx, 0, 0).expect("measure");
        assert_eq!(m.num_patterns, 16);
        assert!((m.error_rate - 6.0 / 16.0).abs() < 1e-12);
        // ED = 4 on those 6 patterns; NMED = (6*4/16) / 7.
        let want_nmed = (6.0 * 4.0 / 16.0) / 7.0;
        assert!((m.nmed.expect("nmed") - want_nmed).abs() < 1e-12);
        assert_eq!(m.max_error_distance, Some(4));
    }

    #[test]
    fn mred_uses_relative_distance() {
        let (exact, approx) = pair();
        let m = measure_auto(&exact, &approx, 0, 0).expect("measure");
        // MRED = mean over patterns of ED / max(y, 1); errors happen when
        // true sum is 4..6 with ED 4.
        let mut want = 0.0;
        for a in 0..4u64 {
            for b in 0..4u64 {
                let y = a + b;
                if y >= 4 {
                    want += 4.0 / y as f64;
                }
            }
        }
        want /= 16.0;
        assert!((m.mred.expect("mred") - want).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_approaches_exhaustive() {
        let (exact, approx) = pair();
        let exhaustive = measure_auto(&exact, &approx, 0, 0).expect("measure");
        let patterns = PatternBuffer::random(4, 20_000, 123);
        let sampled = measure(&exact, &approx, &patterns).expect("measure");
        assert!(
            (sampled.error_rate - exhaustive.error_rate).abs() < 0.02,
            "sampled {} vs exact {}",
            sampled.error_rate,
            exhaustive.error_rate
        );
    }

    /// A 17-input circuit pair (above EXHAUSTIVE_INPUT_LIMIT) with a real
    /// error: drop the final carry of a 17-bit incrementer-ish adder tree.
    fn wide_pair() -> (Aig, Aig) {
        let exact = alsrac_circuits::arith::ripple_carry_adder(9); // 18 inputs
        let mut approx = exact.clone();
        approx.set_output_lit(9, Lit::FALSE);
        (exact, approx)
    }

    #[test]
    fn sampled_measurement_is_identical_across_thread_counts() {
        let (exact, approx) = wide_pair();
        let rounds = MEASURE_BLOCK_PATTERNS * 2 + 513; // 3 blocks, ragged tail
        let serial =
            alsrac_rt::pool::with_threads(1, || measure_sampled(&exact, &approx, rounds, 11))
                .expect("measure");
        assert!(serial.error_rate > 0.0, "pair must actually disagree");
        assert_eq!(serial.num_patterns, rounds);
        for threads in [2, 4] {
            let parallel = alsrac_rt::pool::with_threads(threads, || {
                measure_sampled(&exact, &approx, rounds, 11)
            })
            .expect("measure");
            assert_eq!(serial.num_patterns, parallel.num_patterns);
            assert_eq!(serial.error_rate.to_bits(), parallel.error_rate.to_bits());
            assert_eq!(
                serial.nmed.map(f64::to_bits),
                parallel.nmed.map(f64::to_bits)
            );
            assert_eq!(
                serial.mred.map(f64::to_bits),
                parallel.mred.map(f64::to_bits)
            );
            assert_eq!(serial.max_error_distance, parallel.max_error_distance);
        }
    }

    #[test]
    fn blocked_sampling_approaches_exhaustive() {
        // The blocked estimator is still an unbiased sample of the true
        // error: compare against exhaustive measurement on a small pair
        // evaluated through the blocked path directly.
        let (exact, approx) = pair();
        let exhaustive = measure_auto(&exact, &approx, 0, 0).expect("measure");
        let sampled = measure_sampled(&exact, &approx, 20_000, 3).expect("measure");
        assert!(
            (sampled.error_rate - exhaustive.error_rate).abs() < 0.02,
            "sampled {} vs exact {}",
            sampled.error_rate,
            exhaustive.error_rate
        );
    }

    #[test]
    fn sampled_measurement_with_zero_rounds_is_empty() {
        let (exact, approx) = wide_pair();
        let m = measure_sampled(&exact, &approx, 0, 1).expect("measure");
        assert_eq!(m.num_patterns, 0);
        assert_eq!(m.error_rate, 0.0);
    }

    #[test]
    fn sampled_measurement_checks_arity() {
        let a = alsrac_circuits::arith::ripple_carry_adder(2);
        let b = alsrac_circuits::arith::ripple_carry_adder(3);
        let err = measure_sampled(&a, &b, 100, 1).expect_err("mismatch");
        assert!(matches!(err, MetricsError::ArityMismatch { .. }));
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let a = alsrac_circuits::arith::ripple_carry_adder(2);
        let b = alsrac_circuits::arith::ripple_carry_adder(3);
        let err = measure_auto(&a, &b, 100, 1).expect_err("mismatch");
        assert!(matches!(err, MetricsError::ArityMismatch { .. }));
    }

    #[test]
    fn empty_pattern_set_is_zero_error() {
        let words = OutputWords::from_rows(&[vec![0]]);
        let m = compare_output_words(&words, &words, &[0], 0);
        assert_eq!(m.error_rate, 0.0);
    }

    #[test]
    fn many_output_circuits_skip_distance_metrics() {
        let mut exact = Aig::new("wide");
        let a = exact.add_input("a");
        for i in 0..70 {
            exact.add_output(format!("y{i}"), if i % 2 == 0 { a } else { !a });
        }
        let mut approx = exact.clone();
        approx.set_output_lit(0, Lit::FALSE);
        let m = measure_auto(&exact, &approx, 100, 1).expect("measure");
        assert!(m.nmed.is_none());
        assert!(m.mred.is_none());
        assert!(m.error_rate > 0.0);
    }

    #[test]
    fn metric_display_names() {
        assert_eq!(ErrorMetric::ErrorRate.to_string(), "ER");
        assert_eq!(ErrorMetric::Nmed.to_string(), "NMED");
        assert_eq!(ErrorMetric::Mred.to_string(), "MRED");
    }

    #[test]
    fn fused_compare_matches_apply_then_compare() {
        // The fused single-pass comparison must reproduce the two-pass
        // apply() + compare_output_words() result bit-for-bit, including
        // the floating-point distance sums, for every node's influence and
        // random change masks (ragged final word included).
        let exact_aig = alsrac_circuits::arith::ripple_carry_adder(3);
        let patterns = PatternBuffer::random(6, 200, 17);
        let sim = Simulation::new(&exact_aig, &patterns);
        let fanouts = exact_aig.fanout_map();
        let exact_out = sim.output_words(&exact_aig);
        let masks = patterns.word_masks();
        let mut rng = alsrac_rt::Rng::from_seed(23);
        for node in exact_aig.iter_ands() {
            let inf = FlipInfluence::compute(&exact_aig, &sim, &fanouts, node);
            let change: Vec<u64> = (0..sim.num_words()).map(|_| rng.next_u64()).collect();
            let applied = inf.apply(&exact_out, &change);
            let want = compare_output_words(&exact_out, &applied, &masks, patterns.num_patterns());
            let got = compare_flipped_output_words(
                &exact_out,
                &exact_out,
                &inf,
                &change,
                &masks,
                patterns.num_patterns(),
            );
            assert_eq!(want.num_patterns, got.num_patterns, "node {node}");
            assert_eq!(
                want.error_rate.to_bits(),
                got.error_rate.to_bits(),
                "node {node}"
            );
            assert_eq!(want.nmed.map(f64::to_bits), got.nmed.map(f64::to_bits));
            assert_eq!(want.mred.map(f64::to_bits), got.mred.map(f64::to_bits));
            assert_eq!(want.max_error_distance, got.max_error_distance);

            // Sparse rate-only path: identical error_rate bits via the
            // precomputed base columns + dirty-word adjustment.
            let (base_diff, base_lanes) = base_diff_columns(&exact_out, &exact_out, &masks);
            let rate_only = compare_flipped_error_rate(
                &exact_out,
                &exact_out,
                &inf,
                &change,
                &masks,
                patterns.num_patterns(),
                &base_diff,
                base_lanes,
            );
            assert_eq!(
                rate_only.error_rate.to_bits(),
                want.error_rate.to_bits(),
                "node {node}"
            );
            assert_eq!(rate_only.nmed, None, "node {node}");
            assert_eq!(rate_only.max_error_distance, None, "node {node}");
        }
    }

    #[test]
    fn sparse_rate_compare_against_shifted_base() {
        // Exercise compare_flipped_error_rate with a base that already
        // disagrees with the exact outputs (mid-flow snapshot shape), so
        // base_error_lanes is nonzero and the dirty-word adjustment has to
        // subtract real counts.
        let exact_aig = alsrac_circuits::arith::ripple_carry_adder(3);
        let patterns = PatternBuffer::random(6, 200, 31);
        let sim = Simulation::new(&exact_aig, &patterns);
        let fanouts = exact_aig.fanout_map();
        let exact_out = sim.output_words(&exact_aig);
        let masks = patterns.word_masks();
        // Perturb a copy of the outputs to act as the approximate base.
        let mut base_rows: Vec<Vec<u64>> = (0..exact_out.num_outputs())
            .map(|po| {
                (0..sim.num_words())
                    .map(|w| exact_out.word(po, w))
                    .collect()
            })
            .collect();
        base_rows[0][0] ^= 0b1011;
        base_rows[2][1] ^= 0xF0;
        let base = OutputWords::from_rows(&base_rows);
        let (base_diff, base_lanes) = base_diff_columns(&exact_out, &base, &masks);
        let mut rng = alsrac_rt::Rng::from_seed(47);
        for node in exact_aig.iter_ands() {
            let inf = FlipInfluence::compute(&exact_aig, &sim, &fanouts, node);
            let change: Vec<u64> = (0..sim.num_words()).map(|_| rng.next_u64()).collect();
            let want = compare_output_words(
                &exact_out,
                &inf.apply(&base, &change),
                &masks,
                patterns.num_patterns(),
            );
            let got = compare_flipped_error_rate(
                &exact_out,
                &base,
                &inf,
                &change,
                &masks,
                patterns.num_patterns(),
                &base_diff,
                base_lanes,
            );
            assert_eq!(
                want.error_rate.to_bits(),
                got.error_rate.to_bits(),
                "node {node}"
            );
        }
        // Empty change mask: nothing dirty, base counts pass through.
        let node = exact_aig.iter_ands().next().expect("has ands");
        let inf = FlipInfluence::compute(&exact_aig, &sim, &fanouts, node);
        let zeros = vec![0u64; sim.num_words()];
        let got = compare_flipped_error_rate(
            &exact_out,
            &base,
            &inf,
            &zeros,
            &masks,
            patterns.num_patterns(),
            &base_diff,
            base_lanes,
        );
        let want = compare_output_words(&exact_out, &base, &masks, patterns.num_patterns());
        assert_eq!(want.error_rate.to_bits(), got.error_rate.to_bits());
    }

    #[test]
    fn fused_compare_with_zero_patterns_is_empty() {
        let exact_aig = alsrac_circuits::arith::ripple_carry_adder(2);
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&exact_aig, &patterns);
        let fanouts = exact_aig.fanout_map();
        let node = exact_aig.iter_ands().next().expect("has ands");
        let inf = FlipInfluence::compute(&exact_aig, &sim, &fanouts, node);
        let out = sim.output_words(&exact_aig);
        let m = compare_flipped_output_words(&out, &out, &inf, &[0], &[0], 0);
        assert_eq!(m.num_patterns, 0);
        assert_eq!(m.error_rate, 0.0);
        assert_eq!(m.nmed, Some(0.0));
    }

    #[test]
    fn word_masks_exclude_invalid_lanes() {
        // 10 valid patterns in one word; garbage in the upper lanes must
        // not count.
        let exact = OutputWords::from_rows(&[vec![0u64]]);
        // Differences above lane 10 only.
        let approx = OutputWords::from_rows(&[vec![0xFFFF_FC00u64]]);
        let m = compare_output_words(&exact, &approx, &[(1 << 10) - 1], 10);
        assert_eq!(m.error_rate, 0.0);
    }
}

/// Wilson score interval for a sampled proportion.
///
/// Monte-Carlo error measurement reports a point estimate; Liu's method
/// (ICCAD 2017) *certifies* designs statistically, which needs a bound:
/// given `successes` error patterns among `samples`, returns a confidence
/// interval for the true error rate at the given number of standard
/// normal deviates `z` (1.96 ≈ 95 %, 2.58 ≈ 99 %).
///
/// ```
/// use alsrac_metrics::wilson_interval;
///
/// let (lo, hi) = wilson_interval(30, 10_000, 1.96);
/// assert!(lo < 0.003 && 0.003 < hi);
/// assert!(hi < 0.005); // tight at 10k samples
/// ```
///
/// # Panics
///
/// Panics if `successes > samples` or `samples == 0`.
pub fn wilson_interval(successes: u64, samples: u64, z: f64) -> (f64, f64) {
    assert!(samples > 0, "need at least one sample");
    assert!(successes <= samples, "more successes than samples");
    let n = samples as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let radius = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - radius).max(0.0), (center + radius).min(1.0))
}

/// Upper confidence bound on the error rate of a measurement, assuming it
/// came from `Measurement::num_patterns` independent samples.
///
/// Returns the measured value itself for exhaustive measurements is the
/// caller's judgement; this function always applies the Wilson bound.
pub fn error_rate_upper_bound(measurement: &Measurement, z: f64) -> f64 {
    let successes = (measurement.error_rate * measurement.num_patterns as f64).round() as u64;
    wilson_interval(successes, measurement.num_patterns.max(1) as u64, z).1
}

/// Number of Monte-Carlo samples needed so a zero-error observation
/// certifies `true error <= threshold` at confidence `z` (rule of three
/// generalized through the Wilson bound).
///
/// ```
/// use alsrac_metrics::{samples_for_certification, wilson_interval};
///
/// let n = samples_for_certification(0.001, 1.96);
/// let (_, hi) = wilson_interval(0, n, 1.96);
/// assert!(hi <= 0.001);
/// ```
pub fn samples_for_certification(threshold: f64, z: f64) -> u64 {
    assert!(threshold > 0.0, "threshold must be positive");
    // For zero successes the Wilson upper bound is z^2/(n+z^2); solve for n.
    let z2 = z * z;
    (z2 * (1.0 - threshold) / threshold).ceil() as u64 + 1
}

#[cfg(test)]
mod confidence_tests {
    use super::*;

    #[test]
    fn wilson_contains_true_rate_on_simulated_draws() {
        let mut rng = alsrac_rt::Rng::from_seed(5);
        let true_p = 0.02;
        let mut covered = 0;
        let trials = 200;
        for _ in 0..trials {
            let n = 2000u64;
            let k = (0..n).filter(|_| rng.gen_bool(true_p)).count() as u64;
            let (lo, hi) = wilson_interval(k, n, 1.96);
            if lo <= true_p && true_p <= hi {
                covered += 1;
            }
        }
        // 95% nominal coverage; allow slack for simulation noise.
        assert!(covered >= 180, "coverage {covered}/{trials}");
    }

    #[test]
    fn wilson_edges() {
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.95 && lo < 1.0);
        assert!(hi > 1.0 - 1e-9);
    }

    #[test]
    fn certification_sample_count_is_sufficient_and_tightish() {
        for threshold in [0.01, 0.001, 0.0001] {
            let n = samples_for_certification(threshold, 1.96);
            let (_, hi) = wilson_interval(0, n, 1.96);
            assert!(hi <= threshold, "threshold {threshold}: bound {hi}");
            // Not wastefully large: half the samples must NOT certify.
            let (_, hi_half) = wilson_interval(0, n / 2, 1.96);
            assert!(hi_half > threshold);
        }
    }

    #[test]
    fn upper_bound_wraps_measurement() {
        let m = Measurement {
            num_patterns: 10_000,
            error_rate: 0.003,
            nmed: None,
            mred: None,
            max_error_distance: None,
        };
        let hi = error_rate_upper_bound(&m, 1.96);
        assert!(hi > 0.003 && hi < 0.006);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn wilson_rejects_zero_samples() {
        wilson_interval(0, 0, 1.96);
    }
}
