//! Pins the `alsrac_rt::trace` disabled-path contract: with no sink
//! installed, spans, counters, and the enabled check must not allocate at
//! all. Flows leave their instrumentation in place permanently, so this is
//! what keeps tracing free for every untraced run.
//!
//! The counting allocator below is the one place the workspace uses
//! `unsafe` (its `lib.rs` crates all `forbid(unsafe_code)`): `GlobalAlloc`
//! cannot be implemented without it, and a test binary is the only way to
//! observe "allocates nothing" from safe code.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn disabled_trace_calls_allocate_nothing() {
    assert!(
        !alsrac_rt::trace::is_enabled(),
        "this test requires tracing to be disabled"
    );
    // Warm up thread-locals and lazy statics outside the measured window.
    let warmup = alsrac_rt::trace::span("warmup");
    drop(warmup);
    alsrac_rt::trace::add("warmup", 1);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let span = alsrac_rt::trace::span("disabled_span");
        assert_eq!(span.finish(), 0);
        alsrac_rt::trace::add("disabled_counter", i);
        assert!(!alsrac_rt::trace::is_enabled());
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled trace path allocated {} times",
        after - before
    );
}
