//! Deterministic PRNG: xoshiro256\*\* with SplitMix64 seeding, plus named
//! sub-stream derivation.
//!
//! xoshiro256\*\* (Blackman & Vigna) is a 256-bit-state generator with
//! excellent statistical quality and a one-multiply-per-word hot path —
//! more than enough for Monte-Carlo pattern generation, and fully
//! reproducible across platforms (no floating point, no OS entropy).
//! SplitMix64 expands a single `u64` seed into the four state words, which
//! both avoids the all-zero fixed point and decorrelates nearby seeds.

use std::ops::Range;

/// The SplitMix64 additive constant (the golden-ratio increment).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One step of the SplitMix64 generator: advances `state` and returns the
/// next output word.
///
/// Exposed because seed derivation and the known-answer tests use it
/// directly; most callers want [`Rng::from_seed`] instead.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named random-decision streams of a seeded flow.
///
/// Every stochastic phase of a flow draws from its own sub-stream derived
/// from the single root seed via [`derive_seed`] / [`derive_indexed`],
/// so phases cannot alias each other's pattern sequences and adding a
/// draw to one phase never perturbs another.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stream {
    /// Per-iteration care-set simulation patterns.
    Care,
    /// Candidate batch-error-estimation patterns.
    Estimation,
    /// Final accuracy-measurement patterns.
    Measurement,
    /// Stochastic proposal decisions (Metropolis acceptance etc.).
    Proposal,
    /// Circuit/workload generation.
    Generation,
    /// XOR-hash constraints for approximate model counting.
    Hashing,
    /// Deterministic fault-injection points (robustness test harness).
    Faults,
}

impl Stream {
    fn id(self) -> u64 {
        match self {
            Stream::Care => 1,
            Stream::Estimation => 2,
            Stream::Measurement => 3,
            Stream::Proposal => 4,
            Stream::Generation => 5,
            Stream::Hashing => 6,
            Stream::Faults => 7,
        }
    }
}

/// Derives the seed of a named sub-stream from a root seed.
///
/// Equivalent to [`derive_indexed`] with index 0.
#[inline]
pub fn derive_seed(root: u64, stream: Stream) -> u64 {
    derive_indexed(root, stream, 0)
}

/// Derives the seed of the `index`-th draw of a named sub-stream.
///
/// Used when a phase draws a fresh pattern buffer every iteration (the
/// flow's care simulation): `derive_indexed(root, Stream::Care, i)` gives
/// iteration `i` its own decorrelated seed. Distinct `(stream, index)`
/// pairs map to distinct, SplitMix64-mixed seeds.
#[inline]
pub fn derive_indexed(root: u64, stream: Stream, index: u64) -> u64 {
    // Two chained SplitMix64 steps keyed by stream then index: the output
    // is a full-avalanche mix of (root, stream, index).
    let mut state = root ^ stream.id().wrapping_mul(GOLDEN_GAMMA);
    let keyed = split_mix64(&mut state);
    let mut state = keyed ^ index;
    split_mix64(&mut state)
}

/// A seedable, deterministic pseudo-random number generator.
///
/// The same seed always produces the same sequence, on every platform.
/// Cloning captures the current position; the clone and the original then
/// produce identical continuations.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    pub fn from_seed(seed: u64) -> Rng {
        let mut state = seed;
        let s = [
            split_mix64(&mut state),
            split_mix64(&mut state),
            split_mix64(&mut state),
            split_mix64(&mut state),
        ];
        Rng { s }
    }

    /// Creates the generator for a named sub-stream of `root`.
    ///
    /// Shorthand for `Rng::from_seed(derive_seed(root, stream))`.
    pub fn for_stream(root: u64, stream: Stream) -> Rng {
        Rng::from_seed(derive_seed(root, stream))
    }

    /// Returns the next 64-bit output word (xoshiro256\*\* step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns `true` with probability `p`.
    ///
    /// Compares a 53-bit uniform draw in `[0, 1)` against `p`, so
    /// `gen_bool(0.0)` is always `false` and `gen_bool(1.0)` always `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Returns a uniform value in `range` (exact, via Lemire rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(
            range.start < range.end,
            "gen_range on empty range {}..{}",
            range.start,
            range.end
        );
        let span = (range.end - range.start) as u64;
        let mut m = u128::from(self.next_u64()) * u128::from(span);
        if (m as u64) < span {
            // Reject the partial final block so every value is exactly
            // uniform (Lemire's nearly-divisionless method).
            let threshold = span.wrapping_neg() % span;
            while (m as u64) < threshold {
                m = u128::from(self.next_u64()) * u128::from(span);
            }
        }
        range.start + (m >> 64) as usize
    }

    /// Fills `words` with random 64-bit words.
    #[inline]
    pub fn fill_words(&mut self, words: &mut [u64]) {
        for w in words {
            *w = self.next_u64();
        }
    }

    /// Splits off an independent child generator.
    ///
    /// The child is seeded from the parent's stream (advancing the parent
    /// by one word), so repeated splits yield decorrelated generators
    /// while the whole tree stays a pure function of the root seed.
    pub fn split(&mut self) -> Rng {
        Rng::from_seed(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 known-answer vectors (reference C implementation;
    /// cross-checked against an independent Python implementation).
    #[test]
    fn splitmix64_known_answers() {
        let mut s = 0u64;
        let got: Vec<u64> = (0..4).map(|_| split_mix64(&mut s)).collect();
        assert_eq!(
            got,
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
            ]
        );

        let mut s = 0x0123_4567_89AB_CDEFu64;
        let got: Vec<u64> = (0..4).map(|_| split_mix64(&mut s)).collect();
        assert_eq!(
            got,
            [
                0x157A_3807_A48F_AA9D,
                0xD573_529B_34A1_D093,
                0x2F90_B72E_996D_CCBE,
                0xA2D4_1933_4C46_67EC,
            ]
        );
    }

    /// xoshiro256** known-answer vectors for SplitMix64-expanded seeds
    /// (matches the `rand_xoshiro` crate's `seed_from_u64` convention;
    /// cross-checked against an independent Python implementation).
    #[test]
    fn xoshiro_known_answers() {
        let mut rng = Rng::from_seed(0);
        let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x99EC_5F36_CB75_F2B4,
                0xBF6E_1F78_4956_452A,
                0x1A5F_849D_4933_E6E0,
                0x6AA5_94F1_262D_2D2C,
                0xBBA5_AD4A_1F84_2E59,
                0xFFEF_8375_D9EB_CACA,
            ]
        );

        let mut rng = Rng::from_seed(42);
        let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            [
                0x1578_0B2E_0C2E_C716,
                0x6104_D986_6D11_3A7E,
                0xAE17_5332_39E4_99A1,
                0xECB8_AD47_03B3_60A1,
                0xFDE6_DC7F_E2EC_5E64,
                0xC50D_A531_0179_5238,
            ]
        );
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::from_seed(7);
        let mut b = Rng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_empirical_frequency() {
        for &p in &[0.1, 0.25, 0.5, 0.9] {
            let mut rng = Rng::from_seed(0xF00D);
            let n = 20_000;
            let hits = (0..n).filter(|_| rng.gen_bool(p)).count();
            let freq = hits as f64 / f64::from(n);
            assert!((freq - p).abs() < 0.02, "p={p}: empirical frequency {freq}");
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::from_seed(1);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Rng::from_seed(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(2..12);
            assert!((2..12).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values drawn: {seen:?}");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Rng::from_seed(11);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0..8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = f64::from(c) / f64::from(n);
            assert!((freq - 0.125).abs() < 0.01, "bucket {i}: {freq}");
        }
    }

    #[test]
    fn fill_words_matches_next_u64() {
        let mut a = Rng::from_seed(9);
        let mut b = Rng::from_seed(9);
        let mut buf = [0u64; 16];
        a.fill_words(&mut buf);
        for &w in &buf {
            assert_eq!(w, b.next_u64());
        }
    }

    #[test]
    fn substreams_are_independent() {
        // Distinct streams (and distinct indices within a stream) yield
        // distinct seeds and uncorrelated sequences.
        let root = 42;
        let seeds = [
            derive_seed(root, Stream::Care),
            derive_seed(root, Stream::Estimation),
            derive_seed(root, Stream::Measurement),
            derive_seed(root, Stream::Proposal),
            derive_indexed(root, Stream::Care, 1),
            derive_indexed(root, Stream::Care, 2),
            root,
        ];
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "seed collision {i}/{j}");
            }
        }
        // Correlation check: matching words of two sub-streams agree no
        // more often than unrelated fair coins would.
        let mut a = Rng::for_stream(root, Stream::Care);
        let mut b = Rng::for_stream(root, Stream::Estimation);
        let mut matching_bits = 0u32;
        let total = 64 * 256;
        for _ in 0..256 {
            matching_bits += (a.next_u64() ^ b.next_u64()).count_zeros();
        }
        let frac = f64::from(matching_bits) / f64::from(total);
        assert!((frac - 0.5).abs() < 0.03, "bit agreement {frac}");
    }

    #[test]
    fn derive_is_stable() {
        // The derivation function is part of the reproducibility contract:
        // changing it silently would change every seeded flow trace.
        assert_eq!(derive_seed(1, Stream::Care), derive_seed(1, Stream::Care));
        assert_eq!(
            derive_indexed(1, Stream::Care, 5),
            derive_indexed(1, Stream::Care, 5)
        );
        assert_ne!(derive_seed(1, Stream::Care), derive_seed(2, Stream::Care));
    }

    #[test]
    fn split_decorrelates() {
        let mut parent = Rng::from_seed(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        Rng::from_seed(0).gen_range(3..3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gen_bool_rejects_bad_probability() {
        Rng::from_seed(0).gen_bool(1.5);
    }
}
