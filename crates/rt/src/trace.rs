//! Flow telemetry: scoped spans, named counters, and a JSONL run-report
//! sink — the observability substrate of every iterative flow in this
//! workspace (hermetic policy: no `tracing` crate).
//!
//! ALSRAC's greedy loop (simulate → estimate → apply → re-optimize) hides
//! regressions N iterations deep; this module makes each iteration
//! machine-readable. Three facilities:
//!
//! * **Spans** — [`span`] returns a guard that measures monotonic wall
//!   time. Spans nest per thread (a thread-local stack turns `span("a")`
//!   inside `span("b")` into the path `b/a`) and are thread-aware: a span
//!   opened inside a [`crate::pool`] worker attributes its time to that
//!   worker without touching any other thread's nesting. Completed spans
//!   accumulate into a process-wide table (total ns, call count, distinct
//!   threads) readable via [`snapshot`] and dumpable via [`emit_totals`].
//!   [`Span::finish`] additionally hands the caller its own elapsed
//!   nanoseconds, so flows can attach exact per-phase times to their own
//!   iteration records even when several flows run concurrently.
//! * **Counters** — [`add`] bumps a named `u64` (LACs scored, candidates
//!   NaN-filtered, influence cache hits, patterns simulated…). Counters
//!   are plain commutative sums, so worker merge order can never change a
//!   total.
//! * **JSONL sink** — [`emit`] writes one [`crate::json::Obj`] record per
//!   line to the sink installed by [`enable_file`] / [`enable_writer`] /
//!   the `ALSRAC_TRACE` environment knob ([`init_from_env`]). Each line is
//!   written under one lock, so concurrent flows interleave whole records,
//!   never bytes. The record schema is documented in DESIGN.md
//!   ("Telemetry").
//!
//! **Disabled cost.** When no sink is installed every entry point reduces
//! to one relaxed atomic load: [`span`] returns an inert guard without
//! reading the clock, [`add`] returns immediately, and nothing allocates
//! (pinned by `crates/rt/tests/trace_disabled.rs` with a counting
//! allocator). Flows guard record *construction* behind [`is_enabled`], so
//! a disabled run does no formatting work at all.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Obj;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
static TOTALS: Mutex<Totals> = Mutex::new(Totals::new());
static NEXT_RUN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Names of the spans currently open on this thread (innermost last).
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Small dense id for the current thread (for distinct-thread counts).
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    /// Job id stamped onto every record emitted from this thread
    /// (0 = untagged). Set by multi-tenant drivers such as `alsrac::serve`
    /// so interleaved job streams stay separable on one sink.
    static JOB_TAG: Cell<u64> = const { Cell::new(0) };
}

struct Totals {
    spans: BTreeMap<String, SpanTotal>,
    counters: BTreeMap<&'static str, u64>,
}

struct SpanTotal {
    ns: u64,
    count: u64,
    threads: BTreeSet<u64>,
}

impl Totals {
    const fn new() -> Totals {
        Totals {
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }
}

/// One row of a [`snapshot`]: aggregate statistics for a span path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Span path (`outer/inner` for nested spans).
    pub name: String,
    /// Total nanoseconds across all completed spans with this path.
    pub ns: u64,
    /// Number of completed spans with this path.
    pub count: u64,
    /// Number of distinct threads that completed such a span.
    pub threads: usize,
}

fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        let current = id.get();
        if current != 0 {
            current
        } else {
            let fresh = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            id.set(fresh);
            fresh
        }
    })
}

/// Whether a trace sink is installed. One relaxed atomic load; callers use
/// it to skip record construction entirely on the disabled path.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a file sink at `path` (truncating) and enables tracing.
///
/// # Errors
///
/// Propagates the file-creation error; tracing stays disabled on failure.
pub fn enable_file(path: &str) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    enable_writer(Box::new(io::BufWriter::new(file)));
    Ok(())
}

/// Installs an arbitrary sink (used by tests and in-memory consumers) and
/// enables tracing. Replaces any previous sink.
pub fn enable_writer(writer: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    *sink = Some(writer);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Enables tracing when the `ALSRAC_TRACE` environment variable names a
/// writable path. Returns `Ok(Some(path))` on success, `Ok(None)` when the
/// variable is unset or blank, and the creation error when the path cannot
/// be opened — an explicitly requested trace must never be silently
/// dropped, so binaries report that error and exit nonzero rather than
/// running untraced. Tracing stays disabled on failure.
///
/// # Errors
///
/// Returns the [`io::Error`] from creating the file at `$ALSRAC_TRACE`,
/// annotated with the offending path.
pub fn init_from_env() -> io::Result<Option<String>> {
    let Ok(path) = std::env::var("ALSRAC_TRACE") else {
        return Ok(None);
    };
    if path.trim().is_empty() {
        return Ok(None);
    }
    enable_file(&path).map_err(|e| {
        io::Error::new(e.kind(), format!("ALSRAC_TRACE={path}: cannot create: {e}"))
    })?;
    Ok(Some(path))
}

/// Flushes and removes the sink, disabling tracing. Accumulated totals are
/// kept (use [`reset`] to clear them).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(writer) = sink.as_mut() {
        let _ = writer.flush();
    }
    *sink = None;
}

/// Clears all accumulated span and counter totals (tests and multi-phase
/// binaries that want per-phase totals records).
pub fn reset() {
    let mut totals = TOTALS.lock().expect("trace totals poisoned");
    totals.spans.clear();
    totals.counters.clear();
}

/// Flushes the sink, if any.
pub fn flush() {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(writer) = sink.as_mut() {
        let _ = writer.flush();
    }
}

/// Draws a fresh process-unique run id (flows stamp every record of one
/// run with it, so interleaved concurrent runs stay separable).
pub fn next_run_id() -> u64 {
    NEXT_RUN.fetch_add(1, Ordering::Relaxed)
}

/// Tags (or untags, with `None`) every record subsequently emitted from
/// *this thread* with a `job_id` field. Multi-tenant drivers set the tag
/// around each job they execute so a shared sink stays demultiplexable;
/// the flow code underneath needs no knowledge of the tag. Job ids must be
/// nonzero (zero is the internal "untagged" sentinel).
///
/// # Panics
///
/// Panics if `job_id` is `Some(0)`.
pub fn set_job_tag(job_id: Option<u64>) {
    let raw = job_id.unwrap_or(0);
    assert!(
        job_id != Some(0),
        "job id 0 is reserved for the untagged state"
    );
    JOB_TAG.with(|tag| tag.set(raw));
}

/// The `job_id` tag in effect on this thread, if any.
pub fn job_tag() -> Option<u64> {
    JOB_TAG.with(|tag| match tag.get() {
        0 => None,
        id => Some(id),
    })
}

/// A scoped wall-clock timer. Created by [`span`]; records its elapsed
/// time into the process-wide totals on drop (or [`Span::finish`]).
///
/// Spans follow strict LIFO discipline per thread (guard style); dropping
/// spans out of order mis-nests the recorded *paths* but never corrupts
/// other threads or loses time.
#[must_use = "a span measures the time until it is dropped or finished"]
pub struct Span {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    path: String,
    start: Instant,
}

/// Opens a span named `name`. Inert (no clock read, no allocation) when
/// tracing is disabled.
pub fn span(name: &'static str) -> Span {
    // Fault-injection hook: span opens are the deterministic coordinate
    // system the robustness harness injects at. One relaxed load when no
    // plan is armed, so the disabled-path cost guarantee holds.
    crate::faults::on_span();
    if !is_enabled() {
        return Span { active: None };
    }
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.to_string()
        } else {
            let mut path = stack.join("/");
            path.push('/');
            path.push_str(name);
            path
        };
        stack.push(name);
        path
    });
    Span {
        active: Some(ActiveSpan {
            path,
            start: Instant::now(),
        }),
    }
}

impl Span {
    /// Closes the span and returns its elapsed nanoseconds (0 when the
    /// span was inert). The time is also added to the global totals.
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    fn close(&mut self) -> u64 {
        let Some(active) = self.active.take() else {
            return 0;
        };
        let ns = active.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let tid = thread_id();
        let mut totals = TOTALS.lock().expect("trace totals poisoned");
        let entry = totals.spans.entry(active.path).or_insert(SpanTotal {
            ns: 0,
            count: 0,
            threads: BTreeSet::new(),
        });
        entry.ns += ns;
        entry.count += 1;
        entry.threads.insert(tid);
        ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Adds `value` to the named counter. One relaxed atomic load when
/// tracing is disabled.
#[inline]
pub fn add(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut totals = TOTALS.lock().expect("trace totals poisoned");
    *totals.counters.entry(name).or_insert(0) += value;
}

/// A consistent copy of the span and counter totals, sorted by name.
pub fn snapshot() -> (Vec<PhaseSnapshot>, Vec<(String, u64)>) {
    let totals = TOTALS.lock().expect("trace totals poisoned");
    let spans = totals
        .spans
        .iter()
        .map(|(name, t)| PhaseSnapshot {
            name: name.clone(),
            ns: t.ns,
            count: t.count,
            threads: t.threads.len(),
        })
        .collect();
    let counters = totals
        .counters
        .iter()
        .map(|(&name, &v)| (name.to_string(), v))
        .collect();
    (spans, counters)
}

/// Writes one JSONL record (a closed-over [`Obj`]) to the sink. No-op when
/// tracing is disabled; the whole line is written under one lock. When a
/// [`set_job_tag`] tag is active on this thread, a `job_id` field is
/// appended to the record before it is serialized.
pub fn emit(record: Obj) {
    if !is_enabled() {
        return;
    }
    let record = match job_tag() {
        Some(id) => record.u64("job_id", id),
        None => record,
    };
    let line = record.finish();
    let mut sink = SINK.lock().expect("trace sink poisoned");
    if let Some(writer) = sink.as_mut() {
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
        let _ = writer.flush();
    }
}

/// Emits a `totals` record: every span path (ns/count/threads) and every
/// counter accumulated so far. Binaries call this once before exit.
pub fn emit_totals() {
    if !is_enabled() {
        return;
    }
    let (spans, counters) = snapshot();
    let mut span_obj = Obj::new();
    for s in &spans {
        span_obj = span_obj.obj(
            &s.name,
            Obj::new()
                .u64("ns", s.ns)
                .u64("count", s.count)
                .u64("threads", s.threads as u64),
        );
    }
    let mut counter_obj = Obj::new();
    for (name, value) in &counters {
        counter_obj = counter_obj.u64(name, *value);
    }
    emit(
        Obj::new()
            .str("type", "totals")
            .obj("spans", span_obj)
            .obj("counters", counter_obj),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool;
    use std::sync::{Arc, Mutex as StdMutex, OnceLock};

    /// The trace sink and totals are process-global; tests that touch them
    /// serialize on this lock.
    fn test_lock() -> &'static StdMutex<()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
    }

    /// An in-memory sink the test keeps a handle to after installing.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("buf").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().expect("buf").clone()).expect("utf8")
        }
    }

    fn with_trace<R>(f: impl FnOnce(&SharedBuf) -> R) -> R {
        let _guard = test_lock().lock().expect("test lock");
        let buf = SharedBuf::default();
        enable_writer(Box::new(buf.clone()));
        reset();
        let result = f(&buf);
        disable();
        reset();
        result
    }

    #[test]
    fn init_from_env_reports_uncreatable_paths_instead_of_panicking() {
        let _guard = test_lock().lock().expect("test lock");
        let saved = std::env::var("ALSRAC_TRACE").ok();

        std::env::remove_var("ALSRAC_TRACE");
        assert_eq!(init_from_env().expect("unset is fine"), None);
        std::env::set_var("ALSRAC_TRACE", "  ");
        assert_eq!(init_from_env().expect("blank is fine"), None);

        std::env::set_var("ALSRAC_TRACE", "/nonexistent-dir/trace.jsonl");
        let err = init_from_env().expect_err("uncreatable path must error");
        let message = err.to_string();
        assert!(
            message.contains("ALSRAC_TRACE=/nonexistent-dir/trace.jsonl"),
            "error must name the offending path: {message}"
        );
        assert!(!is_enabled(), "tracing must stay disabled on failure");

        match saved {
            Some(value) => std::env::set_var("ALSRAC_TRACE", value),
            None => std::env::remove_var("ALSRAC_TRACE"),
        }
    }

    #[test]
    fn spans_nest_on_one_thread_and_not_into_pool_workers() {
        with_trace(|_| {
            let outer = span("outer");
            {
                let inner = span("inner");
                drop(inner);
            }
            // Spans opened inside pool workers start a fresh stack: they
            // must NOT inherit the caller's "outer" prefix, and the
            // caller's nesting must survive the parallel section intact.
            let results = pool::with_threads(4, || {
                pool::par_indices(16, |i| {
                    let work = span("work");
                    let nested = span("work_inner");
                    drop(nested);
                    work.finish();
                    i
                })
            });
            assert_eq!(results.len(), 16);
            let post = span("post");
            drop(post);
            drop(outer);

            let (spans, _) = snapshot();
            let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
            assert!(names.contains(&"outer"));
            assert!(names.contains(&"outer/inner"));
            assert!(names.contains(&"outer/post"));
            assert!(
                names.contains(&"work"),
                "worker span got a prefix: {names:?}"
            );
            assert!(names.contains(&"work/work_inner"));
            assert!(!names.iter().any(|n| n.starts_with("outer/work")));
            let work = spans.iter().find(|s| s.name == "work").expect("work");
            assert_eq!(work.count, 16);
            assert!(work.threads >= 1);
        });
    }

    #[test]
    fn counter_totals_are_independent_of_merge_order() {
        // Counters are commutative sums: any worker interleaving (and the
        // serial order) must produce identical totals.
        let items: Vec<u64> = (1..=100).collect();
        let totals_at = |threads: usize| {
            with_trace(|_| {
                pool::with_threads(threads, || {
                    pool::par_map(&items, |&i| {
                        add("merge_order", i);
                        add("ones", 1);
                    })
                });
                let (_, counters) = snapshot();
                counters
            })
        };
        let serial = totals_at(1);
        assert_eq!(
            serial,
            vec![("merge_order".to_string(), 5050), ("ones".to_string(), 100)]
        );
        for threads in [2, 3, 8] {
            assert_eq!(totals_at(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn emitted_records_round_trip_through_the_parser() {
        let text = with_trace(|buf| {
            emit(
                Obj::new()
                    .str("type", "iteration")
                    .u64("iter", 7)
                    .bool("accepted", true)
                    .f64("est_error", 0.1),
            );
            add("lacs_scored", 42);
            let sp = span("phase");
            sp.finish();
            emit_totals();
            buf.text()
        });
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let rec = crate::json::Json::parse(lines[0]).expect("valid JSONL");
        assert_eq!(rec.get("type").and_then(|v| v.as_str()), Some("iteration"));
        assert_eq!(
            rec.get("est_error")
                .and_then(|v| v.as_f64())
                .map(f64::to_bits),
            Some(0.1f64.to_bits())
        );
        let totals = crate::json::Json::parse(lines[1]).expect("valid JSONL");
        assert_eq!(totals.get("type").and_then(|v| v.as_str()), Some("totals"));
        assert_eq!(
            totals
                .get("counters")
                .and_then(|c| c.get("lacs_scored"))
                .and_then(|v| v.as_u64()),
            Some(42)
        );
        let phase = totals
            .get("spans")
            .and_then(|s| s.get("phase"))
            .expect("span");
        assert_eq!(phase.get("count").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn finish_returns_elapsed_and_disabled_spans_return_zero() {
        with_trace(|_| {
            let sp = span("timed");
            std::hint::black_box(0u64);
            let ns = sp.finish();
            // Monotonic clocks can report 0 ns for very short intervals,
            // but the totals entry must exist regardless.
            let (spans, _) = snapshot();
            let t = spans.iter().find(|s| s.name == "timed").expect("timed");
            assert!(t.ns >= ns);
        });
        let _guard = test_lock().lock().expect("test lock");
        assert!(!is_enabled());
        let sp = span("inert");
        assert_eq!(sp.finish(), 0);
        let (spans, _) = snapshot();
        assert!(spans.iter().all(|s| s.name != "inert"));
    }

    #[test]
    fn run_ids_are_unique() {
        let a = next_run_id();
        let b = next_run_id();
        assert_ne!(a, b);
    }

    #[test]
    fn job_tag_stamps_records_and_is_thread_local() {
        let text = with_trace(|buf| {
            emit(Obj::new().str("type", "iteration").u64("iter", 1));
            set_job_tag(Some(42));
            assert_eq!(job_tag(), Some(42));
            emit(Obj::new().str("type", "iteration").u64("iter", 2));
            // A fresh thread starts untagged even while this one is tagged.
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    assert_eq!(job_tag(), None);
                    emit(Obj::new().str("type", "iteration").u64("iter", 3));
                });
            });
            set_job_tag(None);
            emit(Obj::new().str("type", "iteration").u64("iter", 4));
            buf.text()
        });
        let tags: Vec<Option<u64>> = text
            .lines()
            .map(|line| {
                let rec = crate::json::Json::parse(line).expect("valid JSONL");
                rec.get("job_id").and_then(|v| v.as_u64())
            })
            .collect();
        assert_eq!(tags, vec![None, Some(42), None, None]);
    }

    #[test]
    #[should_panic(expected = "job id 0 is reserved")]
    fn job_tag_rejects_zero() {
        set_job_tag(Some(0));
    }
}
