//! Wall-clock micro-bench timer for `harness = false` bench targets.
//!
//! Replaces the Criterion dependency with the subset this workspace
//! actually uses: per-kernel timing with warmup, batched samples sized by
//! a calibration run, and a median/min/mean report printed per benchmark.
//!
//! A [`Runner`] decides between two modes from the command line:
//! `cargo bench` passes `--bench` to the target, which selects the full
//! timed run; any other invocation (notably `cargo test`, which executes
//! `harness = false` bench targets to keep them compiling and running)
//! gets a one-iteration smoke run, so the test suite stays fast.
//!
//! ```no_run
//! let mut runner = alsrac_rt::bench::Runner::from_args();
//! runner.bench("sum 1..1000", || {
//!     std::hint::black_box((1..1000u64).sum::<u64>());
//! });
//! runner.finish();
//! ```

use std::time::{Duration, Instant};

/// Timing summary of one benchmark.
#[derive(Clone, Debug)]
pub struct Report {
    /// Benchmark name.
    pub name: String,
    /// Iterations per sample (1 in smoke mode).
    pub iters_per_sample: u64,
    /// Number of timed samples (1 in smoke mode).
    pub samples: usize,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Minimum per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
}

/// Benchmark execution parameters (full mode).
#[derive(Clone, Debug)]
pub struct Options {
    /// Timed samples to collect per benchmark.
    pub samples: usize,
    /// Warmup samples (run, not recorded) per benchmark.
    pub warmup_samples: usize,
    /// Target wall-clock duration of one sample; the calibration run
    /// chooses the per-sample iteration count to hit it.
    pub target_sample: Duration,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            samples: 15,
            warmup_samples: 3,
            target_sample: Duration::from_millis(20),
        }
    }
}

/// Runs benchmarks and prints a one-line report per kernel.
pub struct Runner {
    options: Options,
    /// Smoke mode: run each kernel once to prove it works, skip timing.
    smoke: bool,
    reports: Vec<Report>,
}

impl Runner {
    /// Builds a runner from the process arguments: full timed mode when
    /// `--bench` is present (what `cargo bench` passes), smoke mode
    /// otherwise (what `cargo test` effectively asks for).
    pub fn from_args() -> Runner {
        let full = std::env::args().any(|a| a == "--bench");
        Runner::new(Options::default(), !full)
    }

    /// Builds a runner with explicit options and mode.
    pub fn new(options: Options, smoke: bool) -> Runner {
        if smoke {
            println!("smoke mode: one iteration per benchmark (pass --bench for timings)");
        }
        Runner {
            options,
            smoke,
            reports: Vec::new(),
        }
    }

    /// Times `f`, prints one report line, and records the report.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) -> &Report {
        let report = if self.smoke {
            let start = Instant::now();
            f();
            let ns = start.elapsed().as_nanos() as f64;
            Report {
                name: name.to_string(),
                iters_per_sample: 1,
                samples: 1,
                median_ns: ns,
                min_ns: ns,
                mean_ns: ns,
            }
        } else {
            self.run_timed(name, &mut f)
        };
        println!(
            "{:<44} median {:>10}  min {:>10}  mean {:>10}  ({} x {} iters)",
            report.name,
            format_ns(report.median_ns),
            format_ns(report.min_ns),
            format_ns(report.mean_ns),
            report.samples,
            report.iters_per_sample,
        );
        self.reports.push(report);
        self.reports.last().expect("just pushed")
    }

    fn run_timed<F: FnMut()>(&self, name: &str, f: &mut F) -> Report {
        // Calibration: double the iteration count until one batch crosses
        // a fraction of the sample target, then scale to the target.
        let mut iters = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = start.elapsed();
            if elapsed >= self.options.target_sample / 4 || iters >= 1 << 24 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 2;
        };
        let target_ns = self.options.target_sample.as_nanos() as f64;
        let iters_per_sample = ((target_ns / per_iter.max(1.0)) as u64).clamp(1, 1 << 24);

        let mut sample_ns = Vec::with_capacity(self.options.samples);
        for sample in 0..self.options.warmup_samples + self.options.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            if sample >= self.options.warmup_samples {
                sample_ns.push(ns);
            }
        }
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let median = if sample_ns.len() % 2 == 1 {
            sample_ns[sample_ns.len() / 2]
        } else {
            (sample_ns[sample_ns.len() / 2 - 1] + sample_ns[sample_ns.len() / 2]) / 2.0
        };
        Report {
            name: name.to_string(),
            iters_per_sample,
            samples: sample_ns.len(),
            median_ns: median,
            min_ns: sample_ns.first().copied().unwrap_or(0.0),
            mean_ns: sample_ns.iter().sum::<f64>() / sample_ns.len() as f64,
        }
    }

    /// All reports so far.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Prints a closing line. Call at the end of `main`.
    pub fn finish(self) {
        println!(
            "{} benchmark{} complete",
            self.reports.len(),
            if self.reports.len() == 1 { "" } else { "s" }
        );
    }
}

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut calls = 0u32;
        let mut runner = Runner::new(Options::default(), true);
        runner.bench("counts calls", || calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(runner.reports().len(), 1);
        runner.finish();
    }

    #[test]
    fn timed_mode_produces_ordered_stats() {
        let options = Options {
            samples: 5,
            warmup_samples: 1,
            target_sample: Duration::from_micros(200),
        };
        let mut runner = Runner::new(options, false);
        let report = runner
            .bench("spin", || {
                std::hint::black_box((0..100u64).sum::<u64>());
            })
            .clone();
        assert_eq!(report.samples, 5);
        assert!(report.min_ns <= report.median_ns);
        assert!(report.min_ns > 0.0);
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_500_000.0), "2.50 ms");
        assert_eq!(format_ns(3_000_000_000.0), "3.00 s");
    }
}
