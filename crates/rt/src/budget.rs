//! Resource governance: cooperative cancellation, wall-clock deadlines,
//! and composable SAT-effort budgets.
//!
//! SAT-gated approximate-synthesis flows have heavy-tailed solver
//! runtimes: a single `distance > bound` query can dominate an entire
//! run. This module supplies the substrate every long-running flow in the
//! workspace threads through its hot loops:
//!
//! * [`CancelToken`] — a shared atomic flag tripped from another thread
//!   (or a signal handler) and polled cooperatively. Checking costs one
//!   relaxed atomic load.
//! * [`Deadline`] — a wall-clock cutoff over [`Instant`]; expiry is
//!   checked with a monotonic-clock read, so it is immune to wall-clock
//!   steps.
//! * [`Budget`] — the composable bundle carried down the call stack:
//!   optional token, optional deadline, and [`SatLimits`] caps on solver
//!   conflicts/propagations per query. `Budget::default()` is unlimited
//!   and costs nothing to check.
//!
//! **Determinism contract.** SAT caps are counted in solver events, not
//! time, so a capped query gives the *same* `Unknown` answer on every
//! machine — flows may let capped answers steer decisions (graceful
//! degradation). Cancellation and deadlines are wall-clock-dependent and
//! therefore nondeterministic; flows must treat them as pure interrupts
//! that abort work without influencing any state that a resumed run would
//! recompute differently.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted computation was interrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The [`CancelToken`] was tripped (user Ctrl-C, supervisor stop, …).
    Cancelled,
    /// The wall-clock [`Deadline`] expired.
    DeadlineExpired,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExpired => write!(f, "deadline expired"),
        }
    }
}

/// A cooperative cancellation flag shared between a controller and the
/// workers it may stop.
///
/// Cloning shares the underlying flag. [`CancelToken::trip`] is a single
/// atomic store, safe to call from signal handlers; workers poll
/// [`CancelToken::is_tripped`] (one relaxed load) at loop boundaries.
/// Once tripped, a token stays tripped.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    tripped: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trips the token. Idempotent; atomic store only (async-signal-safe).
    pub fn trip(&self) {
        self.tripped.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been tripped. One relaxed atomic load.
    #[inline]
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }
}

/// A wall-clock cutoff. Checked against the monotonic clock.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now.
    pub fn after(timeout: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + timeout,
        }
    }

    /// Whether the deadline has passed.
    #[inline]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Per-query caps on CDCL solver effort. `None` means unlimited.
///
/// Conflicts and propagations are deterministic solver events, so the
/// same capped query always yields the same answer (possibly
/// `Unknown`) — unlike a timeout, a cap never makes a run
/// machine-dependent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatLimits {
    /// Maximum conflicts a single `solve` call may spend.
    pub max_conflicts: Option<u64>,
    /// Maximum literal propagations a single `solve` call may spend.
    pub max_propagations: Option<u64>,
}

impl SatLimits {
    /// Whether both caps are absent.
    pub fn is_unlimited(&self) -> bool {
        self.max_conflicts.is_none() && self.max_propagations.is_none()
    }
}

/// The composable resource budget a flow threads through its loops.
///
/// All parts are optional; the default budget is unlimited and checking
/// it reduces to two `Option` tests. Builders compose:
///
/// ```
/// use std::time::Duration;
/// use alsrac_rt::budget::{Budget, CancelToken};
///
/// let token = CancelToken::new();
/// let budget = Budget::default()
///     .with_cancel(token.clone())
///     .with_deadline_after(Duration::from_secs(60))
///     .with_sat_conflicts(10_000);
/// assert!(budget.interrupted().is_none());
/// token.trip();
/// assert!(budget.interrupted().is_some());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Budget {
    cancel: Option<CancelToken>,
    deadline: Option<Deadline>,
    /// Per-SAT-query effort caps, forwarded to `Solver::set_budget`.
    pub sat: SatLimits,
}

impl Budget {
    /// An unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = Some(token);
        self
    }

    /// Attaches a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Deadline) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a deadline `timeout` from now.
    #[must_use]
    pub fn with_deadline_after(self, timeout: Duration) -> Budget {
        self.with_deadline(Deadline::after(timeout))
    }

    /// Caps each SAT query at `max_conflicts` conflicts.
    #[must_use]
    pub fn with_sat_conflicts(mut self, max_conflicts: u64) -> Budget {
        self.sat.max_conflicts = Some(max_conflicts);
        self
    }

    /// Caps each SAT query at `max_propagations` literal propagations.
    #[must_use]
    pub fn with_sat_propagations(mut self, max_propagations: u64) -> Budget {
        self.sat.max_propagations = Some(max_propagations);
        self
    }

    /// The cancellation token, if one is attached.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Time left on the deadline, if one is attached.
    pub fn deadline_remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.remaining())
    }

    /// Whether no limit of any kind is attached.
    pub fn is_unlimited(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none() && self.sat.is_unlimited()
    }

    /// Polls for an interrupt: the cancel token first (cheapest and most
    /// urgent), then the deadline. `None` means keep going. SAT caps are
    /// *not* interrupts — they degrade individual queries to `Unknown`
    /// instead of stopping the flow.
    #[inline]
    pub fn interrupted(&self) -> Option<Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_tripped() {
                return Some(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = &self.deadline {
            if deadline.expired() {
                return Some(Interrupt::DeadlineExpired);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_never_interrupts() {
        let budget = Budget::default();
        assert!(budget.is_unlimited());
        assert_eq!(budget.interrupted(), None);
        assert_eq!(budget.sat.max_conflicts, None);
        assert_eq!(budget.deadline_remaining(), None);
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_tripped());
        clone.trip();
        assert!(token.is_tripped());
        clone.trip(); // idempotent
        assert!(clone.is_tripped());
    }

    #[test]
    fn cancelled_budget_reports_cancelled_first() {
        let token = CancelToken::new();
        let budget = Budget::default()
            .with_cancel(token.clone())
            .with_deadline_after(Duration::ZERO);
        // Both conditions hold; cancellation wins the race for the report.
        token.trip();
        assert_eq!(budget.interrupted(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn expired_deadline_interrupts() {
        let budget = Budget::default().with_deadline_after(Duration::ZERO);
        assert_eq!(budget.interrupted(), Some(Interrupt::DeadlineExpired));
        assert_eq!(budget.deadline_remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_interrupt() {
        let budget = Budget::default().with_deadline_after(Duration::from_secs(3600));
        assert_eq!(budget.interrupted(), None);
        assert!(budget.deadline_remaining().expect("deadline") > Duration::from_secs(3000));
    }

    #[test]
    fn sat_caps_do_not_count_as_interrupts() {
        let budget = Budget::default()
            .with_sat_conflicts(1)
            .with_sat_propagations(1);
        assert!(!budget.is_unlimited());
        assert!(!budget.sat.is_unlimited());
        assert_eq!(budget.interrupted(), None);
    }

    #[test]
    fn interrupt_display_names() {
        assert_eq!(Interrupt::Cancelled.to_string(), "cancelled");
        assert_eq!(Interrupt::DeadlineExpired.to_string(), "deadline expired");
    }
}
