//! Hermetic runtime layer for the ALSRAC workspace.
//!
//! Every crate in this workspace that needs randomness, property-based
//! tests, or micro-benchmarks uses this crate instead of third-party
//! dependencies. The build environment is offline: nothing outside the
//! workspace can be fetched, so `alsrac-rt` has **zero external
//! dependencies** and every future PR stays buildable by construction.
//!
//! Four facilities:
//!
//! * [`Rng`] — a seedable, deterministic PRNG (xoshiro256\*\* core, state
//!   filled from the seed by SplitMix64). ALSRAC is a simulation-only
//!   flow whose results must be reproducible from a single `u64` seed;
//!   [`derive_seed`] / [`derive_indexed`] split that root seed into
//!   independent named sub-streams (care simulation, error estimation,
//!   final measurement, …) instead of the ad-hoc `seed ^ 0xE57`-style
//!   offsets the flow used to hand-roll.
//! * [`check`] — a minimal property-testing harness: composable
//!   generators, configurable case counts, greedy shrinking on failure,
//!   and a replayable seed printed with every failure.
//! * [`bench`] — a wall-clock micro-bench timer (calibrated batches,
//!   warmup, median/min/mean report) for `harness = false` bench targets.
//! * [`pool`] — a data-parallel executor over scoped std threads
//!   (`ALSRAC_THREADS`-sized, order-preserving `par_map`/`par_chunks`)
//!   whose results are bit-identical to serial execution at any thread
//!   count.
//! * [`trace`] — flow telemetry: nestable thread-aware wall-clock spans,
//!   named counters, and a JSONL run-report sink behind the `ALSRAC_TRACE`
//!   env knob, compiling down to one atomic load when disabled.
//! * [`json`] — the zero-dependency JSON builder/parser the trace layer
//!   (and its report tooling) speaks; finite `f64`s round-trip bit-exactly.
//! * [`budget`] — resource governance: cooperative [`budget::CancelToken`],
//!   wall-clock [`budget::Deadline`], and composable [`budget::Budget`]
//!   carrying deterministic SAT conflict/propagation caps.
//! * [`faults`] — a deterministic fault-injection harness (seeded through
//!   [`Stream::Faults`]) that fires cancellations, SAT-budget exhaustion,
//!   or sink I/O failures at exact trace-span ordinals.
//!
//! # Example
//!
//! ```
//! use alsrac_rt::{derive_seed, Rng, Stream};
//!
//! let mut rng = Rng::from_seed(42);
//! let word = rng.next_u64();
//! assert_eq!(word, Rng::from_seed(42).next_u64());
//!
//! // Named sub-streams are independent of each other and of the root.
//! let care = derive_seed(42, Stream::Care);
//! let est = derive_seed(42, Stream::Estimation);
//! assert_ne!(care, est);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod budget;
pub mod check;
pub mod faults;
pub mod json;
pub mod pool;
mod rng;
pub mod trace;

pub use check::{check, u64s, usizes, Config, Gen};
pub use rng::{derive_indexed, derive_seed, split_mix64, Rng, Stream};

/// Asserts a condition inside a [`check`] property, returning `Err` (so the
/// harness can shrink the input) instead of panicking.
///
/// With a single argument the failure message quotes the condition; extra
/// arguments are a `format!` message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`check`] property, returning `Err` with both
/// values on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}
