//! Deterministic fault injection for robustness tests.
//!
//! The flow's failure surface — cancellation mid-iteration, SAT budget
//! exhaustion mid-certificate, a trace sink that starts failing — is hard
//! to hit on demand with real resources. This module injects those faults
//! *deterministically*: a [`FaultPlan`] names a trace-span ordinal and an
//! action, [`arm`] installs it process-wide, and the trace layer calls
//! [`on_span`] at every span open. When the counter reaches the planned
//! ordinal the fault fires exactly once.
//!
//! Plans are seeded through the existing [`crate::Stream`] machinery
//! ([`FaultPlan::seeded`] uses [`Stream::Faults`](crate::Stream::Faults)),
//! so a property suite sweeping seeds explores injection points
//! reproducibly — the same seed always fires the same fault at the same
//! span ordinal.
//!
//! **Disarmed cost.** [`on_span`] is one relaxed atomic load when no plan
//! is armed, preserving the trace layer's disabled-path guarantee (pinned
//! by the counting-allocator test and the ≤2% overhead CI gate).
//!
//! Fault actions:
//!
//! * [`FaultAction::Cancel`] trips the [`CancelToken`] registered via
//!   [`set_cancel_token`] — modelling an external stop arriving at an
//!   arbitrary point in the flow.
//! * [`FaultAction::ExhaustSatBudget`] makes every subsequent budgeted
//!   SAT query answer `Unknown` immediately (the solver consults
//!   [`sat_budget_exhausted`]) — modelling a pathologically hard instance.
//! * [`FaultAction::FailSink`] makes every subsequent write through a
//!   [`FlakySink`] fail — modelling a full disk under the trace file.

use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::budget::CancelToken;
use crate::rng::{derive_seed, Rng, Stream};

/// Whether any plan is armed. The only state `on_span` reads when idle.
static ARMED: AtomicBool = AtomicBool::new(false);
/// Spans seen since the plan was armed.
static SPANS_SEEN: AtomicU64 = AtomicU64::new(0);
/// Span ordinal at which the armed plan fires.
static FIRE_AT: AtomicU64 = AtomicU64::new(0);
/// Whether the armed plan has fired.
static FIRED: AtomicBool = AtomicBool::new(false);
/// Discriminant of the armed [`FaultAction`].
static ACTION: AtomicU64 = AtomicU64::new(0);
/// Set once an `ExhaustSatBudget` fault fires; solvers poll this.
static SAT_EXHAUSTED: AtomicBool = AtomicBool::new(false);
/// Set once a `FailSink` fault fires; [`FlakySink`] polls this.
static SINK_FAILING: AtomicBool = AtomicBool::new(false);
/// The token a `Cancel` fault trips.
static CANCEL: Mutex<Option<CancelToken>> = Mutex::new(None);

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Trip the registered [`CancelToken`] (external stop).
    Cancel,
    /// Make budgeted SAT queries answer `Unknown` from now on.
    ExhaustSatBudget,
    /// Make [`FlakySink`] writes fail from now on.
    FailSink,
}

impl FaultAction {
    fn id(self) -> u64 {
        match self {
            FaultAction::Cancel => 1,
            FaultAction::ExhaustSatBudget => 2,
            FaultAction::FailSink => 3,
        }
    }
}

/// A deterministic fault: fire `action` when the `fire_at_span`-th span
/// (0-based) opens after arming.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// 0-based ordinal of the span open that triggers the fault.
    pub fire_at_span: u64,
    /// What happens at that point.
    pub action: FaultAction,
}

impl FaultPlan {
    /// Derives a plan from `seed`: a uniformly random injection point in
    /// `0..horizon` via the [`Stream::Faults`] sub-stream. Same seed,
    /// same injection point — the property suite's reproducibility hinge.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn seeded(seed: u64, horizon: u64, action: FaultAction) -> FaultPlan {
        assert!(horizon > 0, "fault horizon must be positive");
        let mut rng = Rng::from_seed(derive_seed(seed, Stream::Faults));
        // gen_range is exact-uniform; horizon fits usize on all supported
        // targets (test horizons are small).
        let at = rng.gen_range(0..horizon as usize) as u64;
        FaultPlan {
            fire_at_span: at,
            action,
        }
    }
}

/// Arms `plan` process-wide, clearing any previous plan and its effects.
///
/// Tests that arm faults must serialize (the state is global); the
/// workspace's fault suites share a mutex for this.
pub fn arm(plan: FaultPlan) {
    disarm();
    FIRE_AT.store(plan.fire_at_span, Ordering::Relaxed);
    ACTION.store(plan.action.id(), Ordering::Relaxed);
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms any plan and clears all fault effects (SAT exhaustion, sink
/// failure, counters). The registered cancel token is kept.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
    SPANS_SEEN.store(0, Ordering::Relaxed);
    FIRE_AT.store(0, Ordering::Relaxed);
    FIRED.store(false, Ordering::Relaxed);
    ACTION.store(0, Ordering::Relaxed);
    SAT_EXHAUSTED.store(false, Ordering::Relaxed);
    SINK_FAILING.store(false, Ordering::Relaxed);
}

/// Registers the token a [`FaultAction::Cancel`] fault trips. Replaces
/// any previous registration; `None` unregisters.
pub fn set_cancel_token(token: Option<CancelToken>) {
    *CANCEL.lock().expect("fault cancel token poisoned") = token;
}

/// Number of spans seen since arming (the injection-point coordinate).
pub fn spans_seen() -> u64 {
    SPANS_SEEN.load(Ordering::Relaxed)
}

/// Whether the armed plan has fired.
pub fn injected() -> bool {
    FIRED.load(Ordering::Relaxed)
}

/// Span-open hook, called by `trace::span` before its enabled check.
/// One relaxed atomic load when disarmed.
#[inline]
pub fn on_span() {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    on_span_armed();
}

/// The armed slow path, kept out of the inline hook.
#[cold]
fn on_span_armed() {
    let seen = SPANS_SEEN.fetch_add(1, Ordering::Relaxed);
    if FIRED.load(Ordering::Relaxed) || seen != FIRE_AT.load(Ordering::Relaxed) {
        return;
    }
    if FIRED.swap(true, Ordering::Relaxed) {
        return; // another thread won the race to fire
    }
    match ACTION.load(Ordering::Relaxed) {
        1 => {
            if let Some(token) = CANCEL.lock().expect("fault cancel token poisoned").as_ref() {
                token.trip();
            }
        }
        2 => SAT_EXHAUSTED.store(true, Ordering::Relaxed),
        3 => SINK_FAILING.store(true, Ordering::Relaxed),
        _ => {}
    }
    // Counted so traced fault runs show their injection in reports. Safe
    // to call from inside `trace::span`: `add` opens no spans.
    crate::trace::add("faults_injected", 1);
}

/// Whether an [`FaultAction::ExhaustSatBudget`] fault has fired. Budgeted
/// solvers treat this as an instantly-exhausted budget. One relaxed load.
#[inline]
pub fn sat_budget_exhausted() -> bool {
    SAT_EXHAUSTED.load(Ordering::Relaxed)
}

/// Whether a [`FaultAction::FailSink`] fault has fired.
#[inline]
pub fn sink_failing() -> bool {
    SINK_FAILING.load(Ordering::Relaxed)
}

/// A writer wrapper that starts failing once a [`FaultAction::FailSink`]
/// fault fires. Wrap a trace sink in this to exercise the flow's
/// I/O-error tolerance (the trace layer must drop records, not panic).
#[derive(Debug)]
pub struct FlakySink<W: Write> {
    inner: W,
}

impl<W: Write> FlakySink<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> FlakySink<W> {
        FlakySink { inner }
    }
}

impl<W: Write> Write for FlakySink<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if sink_failing() {
            return Err(io::Error::other("injected sink fault"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if sink_failing() {
            return Err(io::Error::other("injected sink fault"));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as StdMutex, OnceLock};

    /// Fault state is process-global; tests serialize on this lock.
    fn test_lock() -> &'static StdMutex<()> {
        static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| StdMutex::new(()))
    }

    #[test]
    fn seeded_plans_are_reproducible_and_cover_the_horizon() {
        let a = FaultPlan::seeded(7, 100, FaultAction::Cancel);
        let b = FaultPlan::seeded(7, 100, FaultAction::Cancel);
        assert_eq!(a, b);
        assert!(a.fire_at_span < 100);
        // Different seeds spread over the horizon.
        let points: std::collections::BTreeSet<u64> = (0..50)
            .map(|s| FaultPlan::seeded(s, 100, FaultAction::Cancel).fire_at_span)
            .collect();
        assert!(points.len() > 10, "seeded points too clustered: {points:?}");
    }

    #[test]
    fn cancel_fault_trips_the_registered_token_at_the_planned_span() {
        let _guard = test_lock().lock().expect("test lock");
        let token = CancelToken::new();
        set_cancel_token(Some(token.clone()));
        arm(FaultPlan {
            fire_at_span: 2,
            action: FaultAction::Cancel,
        });
        on_span();
        on_span();
        assert!(!token.is_tripped(), "fired early");
        assert!(!injected());
        on_span(); // ordinal 2 → fire
        assert!(token.is_tripped());
        assert!(injected());
        assert_eq!(spans_seen(), 3);
        // Fires exactly once; later spans are inert.
        on_span();
        assert_eq!(spans_seen(), 4);
        disarm();
        set_cancel_token(None);
    }

    #[test]
    fn sat_and_sink_faults_set_and_clear_their_flags() {
        let _guard = test_lock().lock().expect("test lock");
        arm(FaultPlan {
            fire_at_span: 0,
            action: FaultAction::ExhaustSatBudget,
        });
        assert!(!sat_budget_exhausted());
        on_span();
        assert!(sat_budget_exhausted());
        arm(FaultPlan {
            fire_at_span: 0,
            action: FaultAction::FailSink,
        });
        assert!(!sat_budget_exhausted(), "re-arming must clear effects");
        on_span();
        assert!(sink_failing());
        disarm();
        assert!(!sink_failing());
    }

    #[test]
    fn flaky_sink_fails_only_after_the_fault_fires() {
        let _guard = test_lock().lock().expect("test lock");
        disarm();
        let mut sink = FlakySink::new(Vec::new());
        assert!(sink.write(b"ok").is_ok());
        arm(FaultPlan {
            fire_at_span: 0,
            action: FaultAction::FailSink,
        });
        on_span();
        assert!(sink.write(b"fails").is_err());
        assert!(sink.flush().is_err());
        disarm();
        assert!(sink.flush().is_ok());
    }

    #[test]
    fn disarmed_on_span_is_inert() {
        let _guard = test_lock().lock().expect("test lock");
        disarm();
        on_span();
        on_span();
        assert_eq!(spans_seen(), 0);
        assert!(!injected());
    }
}
