//! Minimal property-based testing harness.
//!
//! A property is a function from a generated value to `Result<(), String>`;
//! the [`check`] runner draws a configurable number of cases from a
//! [`Gen`], and on the first failure greedily shrinks the input before
//! panicking with the minimal counterexample and the seed needed to
//! replay the run (`ALSRAC_CHECK_SEED=<seed> cargo test …`).
//!
//! Generators compose structurally: tuples of generators are generators
//! (shrinking one component at a time). The recommended pattern for
//! complex values (circuits, pattern buffers, …) is to generate their
//! *configuration* — sizes and a seed — and construct the value inside
//! the property; shrinking then acts on the configuration, which is
//! exactly the knob a human debugging the failure would turn.
//!
//! ```
//! use alsrac_rt::{check, prop_assert, usizes, Config};
//!
//! check(
//!     "addition commutes",
//!     &Config::default(),
//!     &(usizes(0..1000), usizes(0..1000)),
//!     |&(a, b)| {
//!         prop_assert!(a + b == b + a, "{a} + {b}");
//!         Ok(())
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::ops::Range;

use crate::rng::{split_mix64, Rng};

/// A source of random values with optional shrinking.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly "smaller" candidate values, simplest first.
    ///
    /// The default proposes nothing, which disables shrinking for this
    /// generator.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Generates any `u64`, shrinking toward 0.
pub fn u64s() -> U64s {
    U64s
}

/// See [`u64s`].
#[derive(Clone, Copy, Debug)]
pub struct U64s;

impl Gen for U64s {
    type Value = u64;

    fn generate(&self, rng: &mut Rng) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, &value: &u64) -> Vec<u64> {
        let mut out = Vec::new();
        for candidate in [0, value >> 32, value >> 1, value.wrapping_sub(1)] {
            if candidate != value && !out.contains(&candidate) {
                out.push(candidate);
            }
        }
        out
    }
}

/// Generates a `usize` in `range`, shrinking toward the lower bound.
///
/// # Panics
///
/// Panics (at generation time) if the range is empty.
pub fn usizes(range: Range<usize>) -> Usizes {
    Usizes { range }
}

/// See [`usizes`].
#[derive(Clone, Debug)]
pub struct Usizes {
    range: Range<usize>,
}

impl Gen for Usizes {
    type Value = usize;

    fn generate(&self, rng: &mut Rng) -> usize {
        rng.gen_range(self.range.clone())
    }

    fn shrink(&self, &value: &usize) -> Vec<usize> {
        let lo = self.range.start;
        let mut out = Vec::new();
        for candidate in [lo, lo + (value - lo) / 2, value.saturating_sub(1)] {
            if candidate != value && candidate >= lo && !out.contains(&candidate) {
                out.push(candidate);
            }
        }
        out
    }
}

macro_rules! impl_gen_for_tuple {
    ($(($g:ident, $v:ident, $i:tt)),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for shrunk in self.$i.shrink(&value.$i) {
                        let mut candidate = value.clone();
                        candidate.$i = shrunk;
                        out.push(candidate);
                    }
                )+
                out
            }
        }
    };
}

impl_gen_for_tuple!((G0, v0, 0));
impl_gen_for_tuple!((G0, v0, 0), (G1, v1, 1));
impl_gen_for_tuple!((G0, v0, 0), (G1, v1, 1), (G2, v2, 2));
impl_gen_for_tuple!((G0, v0, 0), (G1, v1, 1), (G2, v2, 2), (G3, v3, 3));

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Root seed. Each property derives its own stream from this and its
    /// name, so properties are independent and individually replayable.
    /// Overridable at run time with `ALSRAC_CHECK_SEED`.
    pub seed: u64,
    /// Upper bound on shrink attempts after a failure.
    pub max_shrinks: u32,
}

impl Config {
    /// A configuration running `cases` cases (other fields default).
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Config {
        let seed = std::env::var("ALSRAC_CHECK_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xA15A_C0DE);
        Config {
            cases: 64,
            seed,
            max_shrinks: 1024,
        }
    }
}

/// FNV-1a, used to give each named property its own seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `property` against `config.cases` values drawn from `gen`.
///
/// On failure the input is greedily shrunk (accept the first simpler
/// candidate that still fails, repeat) and the harness panics with the
/// property name, the minimal counterexample, the failure message, and
/// the seed to replay the exact run.
///
/// # Panics
///
/// Panics if any case fails; this is the intended test-failure path.
pub fn check<G, P>(name: &str, config: &Config, gen: &G, mut property: P)
where
    G: Gen,
    P: FnMut(&G::Value) -> Result<(), String>,
{
    let mut state = config.seed ^ hash_name(name);
    let mut rng = Rng::from_seed(split_mix64(&mut state));
    for case in 0..config.cases {
        let value = gen.generate(&mut rng);
        let Err(error) = property(&value) else {
            continue;
        };
        let (minimal, minimal_error, shrinks) =
            shrink_failure(gen, &mut property, value, error, config.max_shrinks);
        panic!(
            "property '{name}' failed (case {case} of {cases}, {shrinks} shrinks)\n\
             \u{20}  counterexample: {minimal:?}\n\
             \u{20}  error: {minimal_error}\n\
             \u{20}  replay with ALSRAC_CHECK_SEED={seed}",
            cases = config.cases,
            seed = config.seed,
        );
    }
}

fn shrink_failure<G, P>(
    gen: &G,
    property: &mut P,
    mut value: G::Value,
    mut error: String,
    max_shrinks: u32,
) -> (G::Value, String, u32)
where
    G: Gen,
    P: FnMut(&G::Value) -> Result<(), String>,
{
    let mut budget = max_shrinks;
    let mut accepted = 0;
    'outer: while budget > 0 {
        for candidate in gen.shrink(&value) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(e) = property(&candidate) {
                value = candidate;
                error = e;
                accepted += 1;
                continue 'outer;
            }
        }
        break; // no simpler candidate still fails: minimal
    }
    (value, error, accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check(
            "u64 stays u64",
            &Config::with_cases(32),
            &u64s(),
            |_value| {
                counter.set(counter.get() + 1);
                Ok(())
            },
        );
        seen += counter.get();
        assert_eq!(seen, 32);
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // The property "v < 100" over 0..10_000 must shrink to exactly 100.
        let result = std::panic::catch_unwind(|| {
            check(
                "shrinks to boundary",
                &Config::with_cases(256),
                &usizes(0..10_000),
                |&v| {
                    if v < 100 {
                        Ok(())
                    } else {
                        Err(format!("{v} too big"))
                    }
                },
            );
        });
        let message = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(
            message.contains("counterexample: 100"),
            "not minimal: {message}"
        );
        assert!(message.contains("ALSRAC_CHECK_SEED="), "{message}");
    }

    #[test]
    fn tuple_generator_shrinks_componentwise() {
        let gen = (usizes(1..50), usizes(1..50));
        let shrunk = gen.shrink(&(10, 20));
        assert!(shrunk.iter().any(|&(a, b)| a < 10 && b == 20));
        assert!(shrunk.iter().any(|&(a, b)| a == 10 && b < 20));
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let collect = |_: ()| {
            let mut values = Vec::new();
            check(
                "collect",
                &Config {
                    cases: 8,
                    seed: 99,
                    max_shrinks: 0,
                },
                &u64s(),
                |&v| {
                    values.push(v);
                    Ok(())
                },
            );
            values
        };
        assert_eq!(collect(()), collect(()));
    }

    #[test]
    fn property_names_decorrelate_streams() {
        let draw_first = |name: &str| {
            let mut first = None;
            check(
                name,
                &Config {
                    cases: 1,
                    seed: 7,
                    max_shrinks: 0,
                },
                &u64s(),
                |&v| {
                    first = Some(v);
                    Ok(())
                },
            );
            first.unwrap()
        };
        assert_ne!(draw_first("alpha"), draw_first("beta"));
    }
}
