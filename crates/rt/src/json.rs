//! Minimal JSON: a chainable object/array builder for emitting records and
//! a recursive-descent parser for reading them back.
//!
//! The workspace is hermetic (no `serde`), but the telemetry layer
//! ([`crate::trace`]) speaks JSONL: one self-describing object per line so
//! run reports survive crashes mid-run and tools can stream them. This
//! module is the shared vocabulary — [`Obj`] / [`Arr`] build the records,
//! [`Json::parse`] reads them back in `report`-style consumers and the CI
//! smoke gate.
//!
//! Floating-point round trip: `f64` values are emitted with Rust's
//! `Display`, which produces the shortest decimal string that parses back
//! to the identical bits, and parsed with `str::parse::<f64>`, which is
//! correctly rounded. Writing a finite `f64` and reading it back is
//! therefore **bit-exact** — the property the flow-trace acceptance check
//! relies on. Non-finite values are emitted as `null` (JSON has no NaN).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Chainable JSON object builder. Keys are emitted in call order; callers
/// wanting deterministic output should add fields in a fixed order.
#[derive(Clone, Debug)]
pub struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, name: &str, value: u64) -> Obj {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a signed integer field.
    #[must_use]
    pub fn i64(mut self, name: &str, value: i64) -> Obj {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite; finite values round-trip
    /// bit-exactly, see the module docs).
    #[must_use]
    pub fn f64(mut self, name: &str, value: f64) -> Obj {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds an optional float field (`null` when absent or non-finite).
    #[must_use]
    pub fn opt_f64(self, name: &str, value: Option<f64>) -> Obj {
        match value {
            Some(v) => self.f64(name, v),
            None => self.null(name),
        }
    }

    /// Adds an optional unsigned integer field (`null` when absent).
    #[must_use]
    pub fn opt_u64(self, name: &str, value: Option<u64>) -> Obj {
        match value {
            Some(v) => self.u64(name, v),
            None => self.null(name),
        }
    }

    /// Adds a string field (escaped).
    #[must_use]
    pub fn str(mut self, name: &str, value: &str) -> Obj {
        self.key(name);
        escape_into(&mut self.buf, value);
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, name: &str, value: bool) -> Obj {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an explicit `null` field.
    #[must_use]
    pub fn null(mut self, name: &str) -> Obj {
        self.key(name);
        self.buf.push_str("null");
        self
    }

    /// Adds a nested object field.
    #[must_use]
    pub fn obj(mut self, name: &str, value: Obj) -> Obj {
        self.key(name);
        self.buf.push_str(&value.finish());
        self
    }

    /// Adds a nested array field.
    #[must_use]
    pub fn arr(mut self, name: &str, value: Arr) -> Obj {
        self.key(name);
        self.buf.push_str(&value.finish());
        self
    }

    /// Closes the object and returns its JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for Obj {
    fn default() -> Obj {
        Obj::new()
    }
}

/// Chainable JSON array builder (companion to [`Obj`]).
#[derive(Clone, Debug)]
pub struct Arr {
    buf: String,
    first: bool,
}

impl Arr {
    /// Starts an empty array.
    pub fn new() -> Arr {
        Arr {
            buf: String::from("["),
            first: true,
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    /// Appends an object element.
    #[must_use]
    pub fn obj(mut self, value: Obj) -> Arr {
        self.sep();
        self.buf.push_str(&value.finish());
        self
    }

    /// Appends a string element.
    #[must_use]
    pub fn str(mut self, value: &str) -> Arr {
        self.sep();
        escape_into(&mut self.buf, value);
        self
    }

    /// Appends an unsigned integer element.
    #[must_use]
    pub fn u64(mut self, value: u64) -> Arr {
        self.sep();
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float element (`null` when non-finite).
    #[must_use]
    pub fn f64(mut self, value: f64) -> Arr {
        self.sep();
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Closes the array and returns its JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

impl Default for Arr {
    fn default() -> Arr {
        Arr::new()
    }
}

fn escape_into(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\t' => buf.push_str("\\t"),
            '\r' => buf.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// A parsed JSON value.
///
/// Numbers are stored as `f64`; integers up to 2⁵³ (far beyond any counter
/// or nanosecond total this workspace records) are exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order is not preserved; keys are sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON value from `text` (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with the byte offset of the first
    /// problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            )),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("expected {text:?} at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string at byte {}", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.pos)
                            })?);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 char (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(format!("truncated \\u escape at byte {}", self.pos));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        let v = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_json() {
        let text = Obj::new()
            .str("type", "iteration")
            .u64("iter", 3)
            .f64("est_error", 0.015625)
            .bool("accepted", true)
            .null("lac")
            .obj(
                "phase_ns",
                Obj::new().u64("care_sim", 123).u64("estimate", 456),
            )
            .arr("tags", Arr::new().str("a\"b").u64(7))
            .finish();
        let parsed = Json::parse(&text).expect("valid");
        assert_eq!(parsed.get("iter").and_then(Json::as_u64), Some(3));
        assert_eq!(
            parsed.get("est_error").and_then(Json::as_f64),
            Some(0.015625)
        );
        assert_eq!(parsed.get("accepted").and_then(Json::as_bool), Some(true));
        assert!(parsed.get("lac").expect("present").is_null());
        assert_eq!(
            parsed
                .get("phase_ns")
                .and_then(|p| p.get("estimate"))
                .and_then(Json::as_u64),
            Some(456)
        );
        assert_eq!(
            parsed.get("tags").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0.1f64.to_bits(),
            (1.0f64 / 3.0).to_bits(),
            6.0f64.to_bits() / 16, // arbitrary bit pattern (subnormal-ish)
            f64::MIN_POSITIVE.to_bits(),
            f64::MAX.to_bits(),
            (-0.0f64).to_bits(),
            0x3FF5_5555_5555_5555,
        ] {
            let value = f64::from_bits(bits);
            let text = Obj::new().f64("x", value).finish();
            let parsed = Json::parse(&text).expect("valid");
            let back = parsed.get("x").and_then(Json::as_f64).expect("number");
            assert_eq!(back.to_bits(), value.to_bits(), "value {value:e}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let text = Obj::new()
            .f64("x", f64::NAN)
            .f64("y", f64::INFINITY)
            .finish();
        let parsed = Json::parse(&text).expect("valid");
        assert!(parsed.get("x").expect("x").is_null());
        assert!(parsed.get("y").expect("y").is_null());
    }

    #[test]
    fn parses_standalone_values() {
        assert_eq!(Json::parse("null").expect("ok"), Json::Null);
        assert_eq!(Json::parse(" true ").expect("ok"), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").expect("ok"), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\\u0041\"").expect("ok"),
            Json::Str("a\nbA".to_string())
        );
        assert_eq!(
            Json::parse("[1,2,[3]]")
                .expect("ok")
                .as_arr()
                .map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "quote\" back\\slash \n tab\t ctrl\u{1} unicode\u{1F600}";
        let text = Obj::new().str("s", nasty).finish();
        let parsed = Json::parse(&text).expect("valid");
        assert_eq!(parsed.get("s").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        // 😀 is U+1F600 = 😀.
        let parsed = Json::parse("\"\\uD83D\\uDE00\"").expect("ok");
        assert_eq!(parsed.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "nul",
            "{\"a\":1} trailing",
            "\"unterminated",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn integer_accessor_rejects_fractions() {
        let parsed = Json::parse("{\"a\":1.5,\"b\":-1,\"c\":42}").expect("ok");
        assert_eq!(parsed.get("a").and_then(Json::as_u64), None);
        assert_eq!(parsed.get("b").and_then(Json::as_u64), None);
        assert_eq!(parsed.get("c").and_then(Json::as_u64), Some(42));
    }
}
