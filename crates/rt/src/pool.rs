//! Zero-dependency data-parallel executor.
//!
//! The simulation-dominated hot paths of this workspace (per-node flip
//! influence, per-candidate scoring, blocked Monte-Carlo measurement, the
//! per-circuit loops of the experiment binaries) are embarrassingly
//! parallel: every work item is a pure function of shared read-only
//! state. This module fans such loops out over OS threads while keeping
//! the workspace's two non-negotiable properties:
//!
//! * **Hermetic.** No external crates (no rayon): plain
//!   [`std::thread::scope`] plus an atomic work counter. Because the
//!   workspace forbids `unsafe`, a persistent pool (which would need
//!   lifetime-erased job queues) is off the table; instead, worker
//!   threads are spawned per call and borrow the caller's data through
//!   the scope. Spawn cost is a few tens of microseconds per worker —
//!   negligible against the millisecond-scale loops this wraps, and the
//!   primitives fall back to inline execution for tiny inputs.
//! * **Deterministic.** Results are collected by item index, so
//!   [`par_map`] / [`par_chunks`] return exactly what the serial loop
//!   would: output is **bit-identical regardless of thread count**. Work
//!   items must themselves be pure (same input → same output), which
//!   every caller in this workspace guarantees by construction.
//!
//! The worker count comes from `ALSRAC_THREADS` when set (a positive
//! integer; `1` short-circuits every primitive to inline execution) and
//! otherwise from [`std::thread::available_parallelism`], read once and
//! cached. Tests and benchmarks that need to compare thread counts inside
//! one process use [`with_threads`], a scoped override.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::OnceLock;

/// Cached `ALSRAC_THREADS` / `available_parallelism` decision.
static CONFIGURED: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// Scoped override installed by [`with_threads`] (0 = none).
    static OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    /// Set inside pool workers so nested primitives run inline instead of
    /// oversubscribing the machine.
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Parses an `ALSRAC_THREADS` value: a positive integer selects that many
/// workers; `0`, empty, or garbage fall back to auto-detection (`None`).
fn parse_threads(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// The worker count from the environment / hardware, cached on first use.
///
/// `ALSRAC_THREADS` wins when it parses to a positive integer; otherwise
/// [`std::thread::available_parallelism`] decides (1 when even that is
/// unavailable).
pub fn configured_threads() -> usize {
    *CONFIGURED.get_or_init(|| {
        std::env::var("ALSRAC_THREADS")
            .ok()
            .as_deref()
            .and_then(parse_threads)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// The worker count in effect on this thread: a [`with_threads`] override
/// when active, the cached configuration otherwise.
pub fn current_threads() -> usize {
    let overridden = OVERRIDE.with(|o| o.get());
    if overridden > 0 {
        overridden
    } else {
        configured_threads()
    }
}

/// Runs `f` with the worker count forced to `threads` on this thread.
///
/// The override nests and always restores the previous value, including on
/// panic. It exists for determinism tests and benchmarks that compare
/// serial (`threads = 1`) against parallel execution inside one process —
/// production callers should rely on `ALSRAC_THREADS` instead.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads > 0, "worker count must be positive");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(threads)));
    f()
}

/// Marks the current thread as a pool worker for the guard's lifetime:
/// every nested parallel primitive runs inline, exactly as it would inside
/// a [`par_indices`] worker.
///
/// This is for long-lived executor threads *outside* this module — e.g.
/// the job workers of `alsrac::serve`, which each own one flow at a time
/// and must not fan that flow's inner loops out over further threads
/// (oversubscription, and worker-count-dependent span attribution). The
/// guard nests and restores the previous state on drop, including on
/// panic.
#[must_use = "the worker marking lasts only while the guard is alive"]
pub struct WorkerGuard {
    prev: bool,
}

/// Installs a [`WorkerGuard`] on the current thread.
pub fn become_worker() -> WorkerGuard {
    WorkerGuard {
        prev: IN_POOL.with(|p| p.replace(true)),
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL.with(|p| p.set(prev));
    }
}

/// Maps `f` over `0..n` in parallel, returning results in index order.
///
/// The scheduling is dynamic (an atomic counter hands out indices), so
/// uneven items balance across workers, but placement is by index: the
/// result is identical to `(0..n).map(f).collect()` whenever `f` is pure.
/// Runs inline when the effective worker count is 1, when `n < 2`, or when
/// called from inside another pool primitive.
pub fn par_indices<U: Send>(n: usize, f: impl Fn(usize) -> U + Sync) -> Vec<U> {
    let threads = current_threads().min(n);
    if threads <= 1 || IN_POOL.with(|p| p.get()) {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || {
                IN_POOL.with(|p| p.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The receiver outlives the scope; a send can only fail
                    // after a sibling worker panicked, and then the scope
                    // itself propagates that panic.
                    let _ = tx.send((i, f(i)));
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            slots[i] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every index was dispatched exactly once"))
        .collect()
}

/// Maps `f` over a slice in parallel, preserving input order.
///
/// Equivalent to `items.iter().map(f).collect()` for pure `f`, at any
/// thread count.
pub fn par_map<T: Sync, U: Send>(items: &[T], f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    par_indices(items.len(), |i| f(&items[i]))
}

/// Like [`par_indices`], with a per-worker scratch state.
///
/// `init` runs once per worker (once total on the inline path) and the
/// resulting state is threaded through every item that worker processes —
/// the idiom for reusable arenas (e.g. simulation scratch buffers) whose
/// allocation should not be paid per item. Determinism is unchanged:
/// results are placed by index, so `f` must be pure *given a warmed-up
/// scratch* — the scratch may cache capacity but must not leak values
/// between items.
pub fn par_indices_init<S, U: Send>(
    n: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> U + Sync,
) -> Vec<U> {
    let threads = current_threads().min(n);
    if threads <= 1 || IN_POOL.with(|p| p.get()) {
        let mut scratch = init();
        return (0..n).map(|i| f(&mut scratch, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, U)>();
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                IN_POOL.with(|p| p.set(true));
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // See par_indices: a failed send means a sibling
                    // panicked and the scope re-raises.
                    let _ = tx.send((i, f(&mut scratch, i)));
                }
            });
        }
        drop(tx);
        for (i, value) in rx {
            slots[i] = Some(value);
        }
    });
    slots
        .into_iter()
        .map(|v| v.expect("every index was dispatched exactly once"))
        .collect()
}

/// Like [`par_map`], with a per-worker scratch state (see
/// [`par_indices_init`]).
pub fn par_map_init<T: Sync, S, U: Send>(
    items: &[T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, &T) -> U + Sync,
) -> Vec<U> {
    par_indices_init(items.len(), init, |scratch, i| f(scratch, &items[i]))
}

/// Maps `f` over contiguous chunks of at most `chunk_size` items,
/// preserving chunk order.
///
/// `f` receives the chunk index and the chunk slice. The chunk
/// decomposition depends only on `items.len()` and `chunk_size` — never on
/// the thread count — so blocked reductions that fold the returned partial
/// results in order are bit-identical to their serial counterparts.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks<T: Sync, U: Send>(
    items: &[T],
    chunk_size: usize,
    f: impl Fn(usize, &[T]) -> U + Sync,
) -> Vec<U> {
    assert!(chunk_size > 0, "chunk size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    par_indices(chunks.len(), |i| f(i, chunks[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_indices_preserves_order() {
        let got = with_threads(4, || par_indices(100, |i| i * i));
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_matches_serial_map_at_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial: Vec<u64> = items.iter().map(f).collect();
        for threads in [1, 2, 3, 8] {
            let parallel = with_threads(threads, || par_map(&items, f));
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_decomposition_is_thread_count_independent() {
        let items: Vec<u32> = (0..130).collect();
        let sums = |threads| {
            with_threads(threads, || {
                par_chunks(&items, 64, |index, chunk| {
                    (index, chunk.len(), chunk.iter().sum::<u32>())
                })
            })
        };
        let serial = sums(1);
        assert_eq!(serial.len(), 3);
        assert_eq!(serial[0].1, 64);
        assert_eq!(serial[2].1, 2);
        assert_eq!(sums(5), serial);
    }

    #[test]
    fn empty_and_singleton_inputs_run_inline() {
        let empty: Vec<u8> = Vec::new();
        assert!(with_threads(8, || par_map(&empty, |&b| b)).is_empty());
        assert_eq!(with_threads(8, || par_indices(1, |i| i + 7)), vec![7]);
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        // Outside any override the configured count is in effect.
        assert_eq!(current_threads(), configured_threads());
    }

    #[test]
    fn nested_primitives_run_inline_in_workers() {
        // A nested par_indices inside a worker must not deadlock or
        // oversubscribe; it runs inline and still returns ordered results.
        let got = with_threads(4, || {
            par_indices(8, |i| par_indices(4, move |j| i * 10 + j))
        });
        for (i, inner) in got.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn par_map_init_matches_serial_at_every_thread_count() {
        // Scratch caches capacity only; results must not depend on which
        // worker processed which item.
        let items: Vec<usize> = (0..97).collect();
        let run = |threads| {
            with_threads(threads, || {
                par_map_init(&items, Vec::<u64>::new, |scratch: &mut Vec<u64>, &x| {
                    scratch.clear();
                    scratch.extend((0..=x as u64).map(|v| v * v));
                    scratch.iter().sum::<u64>()
                })
            })
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_indices_init_runs_init_once_per_worker_inline() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let got = with_threads(1, || {
            par_indices_init(
                5,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |(), i| i * 2,
            )
        });
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
        assert_eq!(inits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("many"), None);
    }

    #[test]
    fn become_worker_forces_inline_execution_and_restores() {
        let caller = std::thread::current().id();
        with_threads(8, || {
            {
                let _guard = become_worker();
                // Every item runs on the caller's thread: the primitives
                // see IN_POOL and take the inline path.
                let tids = par_indices(16, |_| std::thread::current().id());
                assert!(tids.iter().all(|&t| t == caller));
            }
            // Guard dropped: parallelism is available again (results are
            // identical either way; only placement may differ).
            assert_eq!(par_indices(4, |i| i * 3), vec![0, 3, 6, 9]);
        });
    }

    #[test]
    fn worker_panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_indices(16, |i| {
                    assert!(i != 11, "boom");
                    i
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn par_chunks_rejects_zero_chunk() {
        par_chunks(&[1, 2, 3], 0, |_, c: &[i32]| c.len());
    }
}
