//! A compact CDCL SAT solver.
//!
//! Features: two-watched-literal propagation, first-UIP clause learning
//! with non-chronological backtracking, VSIDS-style variable activities,
//! geometric restarts, phase saving, and incremental solving under
//! assumptions. Sized for the CNF instances this workspace produces
//! (equivalence miters and resubstitution feasibility queries over a few
//! thousand gates), not for competition inputs.

use std::fmt;

use alsrac_rt::budget::{Budget, CancelToken};

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Index into solver arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> SatLit {
        SatLit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> SatLit {
        SatLit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given sign (`true` = negated).
    #[inline]
    pub fn lit(self, negated: bool) -> SatLit {
        SatLit(self.0 << 1 | negated as u32)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable plus a sign.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SatLit(u32);

impl SatLit {
    /// The variable of this literal.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if the literal is negated.
    #[inline]
    pub fn is_negated(self) -> bool {
        self.0 & 1 != 0
    }

    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for SatLit {
    type Output = SatLit;

    #[inline]
    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

impl fmt::Debug for SatLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}v{}",
            if self.is_negated() { "!" } else { "" },
            self.0 >> 1
        )
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (query it with
    /// [`Solver::model_value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The attached [`Budget`] ran out (conflict/propagation cap, deadline,
    /// or cancellation) before an answer was found. The solver backtracks
    /// to level 0 and stays fully reusable: learned clauses are kept and
    /// scopes still pop. Only budgeted solvers (see [`Solver::set_budget`])
    /// can return this.
    Unknown,
}

const UNASSIGNED: u8 = 2;

#[derive(Clone)]
struct Clause {
    lits: Vec<SatLit>,
}

/// A CDCL SAT solver. See the [module docs](self) for the feature set.
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit] = clauses currently watching `lit`.
    watches: Vec<Vec<u32>>,
    /// Assignment per variable: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<u8>,
    /// Saved phase per variable.
    phase: Vec<u8>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Antecedent clause per variable (u32::MAX = decision/assumption).
    reason: Vec<u32>,
    trail: Vec<SatLit>,
    /// Trail indices where each decision level starts.
    trail_limits: Vec<usize>,
    /// Next trail position to propagate.
    propagate_head: usize,
    activity: Vec<f64>,
    activity_inc: f64,
    /// Set when an empty clause was added: permanently unsatisfiable.
    dead: bool,
    conflicts: u64,
    /// Selector variables of the currently open assumption scopes
    /// (outermost first). See [`Solver::push_scope`].
    scopes: Vec<Var>,
    /// Resource budget applied per solve call; `None` = unbudgeted (never
    /// answers [`SatResult::Unknown`]).
    budget: Option<Budget>,
    /// Conflicts spent by the most recent solve call.
    last_conflicts: u64,
    /// Trail literals propagated by the most recent solve call.
    last_propagations: u64,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_limits: Vec::new(),
            propagate_head: 0,
            activity: Vec::new(),
            activity_inc: 1.0,
            dead: false,
            conflicts: 0,
            scopes: Vec::new(),
            budget: None,
            last_conflicts: 0,
            last_propagations: 0,
        }
    }

    /// Attaches a resource [`Budget`] applied to every subsequent solve
    /// call. A budgeted call that exhausts a SAT cap, passes the deadline,
    /// or observes a tripped cancel token returns [`SatResult::Unknown`]
    /// instead of running on; the caps are *per call* (each solve starts
    /// its counters at zero). An unlimited budget still opts the solver
    /// into fault-injected exhaustion
    /// ([`alsrac_rt::faults::sat_budget_exhausted`]).
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = Some(budget);
    }

    /// Removes any attached budget; the solver never answers `Unknown`
    /// again.
    pub fn clear_budget(&mut self) {
        self.budget = None;
    }

    /// Conflicts spent by the most recent solve call. A call that returned
    /// [`SatResult::Unknown`] on the conflict cap reads exactly the cap.
    pub fn last_conflicts(&self) -> u64 {
        self.last_conflicts
    }

    /// Trail literals propagated by the most recent solve call.
    pub fn last_propagations(&self) -> u64 {
        self.last_propagations
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(UNASSIGNED);
        self.phase.push(0);
        self.level.push(0);
        self.reason.push(u32::MAX);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    #[inline]
    fn lit_value(&self, lit: SatLit) -> u8 {
        match self.assign[lit.var().index()] {
            UNASSIGNED => UNASSIGNED,
            v => v ^ lit.is_negated() as u8,
        }
    }

    /// Adds a clause; returns `false` if the solver became trivially
    /// unsatisfiable (empty clause, or a unit contradicting a prior unit).
    ///
    /// Calling this after a `Sat` answer backtracks to decision level 0
    /// first, which **invalidates the current model** — read the model (or
    /// save it) before adding blocking clauses.
    ///
    /// While an assumption scope is open (see [`Solver::push_scope`]), the
    /// clause is tagged with the innermost scope's selector and is
    /// retracted when that scope is popped.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        match self.scopes.last() {
            // The selector literal makes the clause vacuous unless the
            // scope's positive selector is assumed; `pop_scope` then
            // retires it for good.
            Some(&selector) => {
                let mut scoped = Vec::with_capacity(lits.len() + 1);
                scoped.extend_from_slice(lits);
                scoped.push(selector.negative());
                self.add_clause_raw(&scoped)
            }
            None => self.add_clause_raw(lits),
        }
    }

    /// [`Solver::add_clause`] without the scope-selector augmentation.
    fn add_clause_raw(&mut self, lits: &[SatLit]) -> bool {
        if !self.trail_limits.is_empty() {
            self.backtrack_to(0);
        }
        if self.dead {
            return false;
        }
        for l in lits {
            assert!(l.var().index() < self.num_vars(), "unallocated variable");
        }
        // Normalize: drop duplicates and false literals, detect tautology.
        let mut norm: Vec<SatLit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.lit_value(l) == 1 || norm.contains(&!l) {
                return true; // satisfied or tautological
            }
            if self.lit_value(l) == 0 || norm.contains(&l) {
                continue;
            }
            norm.push(l);
        }
        match norm.len() {
            0 => {
                self.dead = true;
                false
            }
            1 => {
                self.enqueue(norm[0], u32::MAX);
                if self.propagate().is_some() {
                    self.dead = true;
                    return false;
                }
                true
            }
            _ => {
                let id = self.clauses.len() as u32;
                self.watches[norm[0].index()].push(id);
                self.watches[norm[1].index()].push(id);
                self.clauses.push(Clause { lits: norm });
                true
            }
        }
    }

    /// Opens an assumption scope: every clause added until the matching
    /// [`Solver::pop_scope`] is active only inside the scope, while learned
    /// clauses that do not depend on scoped clauses persist across scopes.
    /// Returns the new scope depth.
    ///
    /// Implementation: the scope owns a fresh *selector* variable `s`;
    /// scoped clauses get `!s` appended, and every solve implicitly assumes
    /// `s` for all open scopes. Popping asserts `!s`, permanently retiring
    /// the scope's clauses and any learned clause derived from them (such
    /// resolvents necessarily carry `!s`, because `s` never occurs
    /// positively in a clause). This is how repeated miter counting queries
    /// (XOR hash constraints, blocking clauses, comparator bounds) reuse
    /// the CDCL solver's learned state instead of re-solving from scratch.
    ///
    /// Scopes nest; pops must be LIFO.
    pub fn push_scope(&mut self) -> usize {
        self.backtrack_to(0);
        let selector = self.new_var();
        self.scopes.push(selector);
        self.scopes.len()
    }

    /// Closes the innermost assumption scope, retracting every clause added
    /// inside it. Invalidates the current model.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn pop_scope(&mut self) {
        let selector = self.scopes.pop().expect("pop_scope without push_scope");
        self.backtrack_to(0);
        // `selector` is never assumed again, so clauses carrying its
        // negation are vacuously satisfiable from here on; the unit makes
        // that explicit so propagation skips them outright. Added raw: the
        // retirement of an inner scope must not itself be retractable.
        self.add_clause_raw(&[selector.negative()]);
    }

    /// Number of currently open assumption scopes.
    pub fn scope_depth(&self) -> usize {
        self.scopes.len()
    }

    fn enqueue(&mut self, lit: SatLit, reason: u32) {
        debug_assert_eq!(self.lit_value(lit), UNASSIGNED);
        let v = lit.var().index();
        self.assign[v] = !lit.is_negated() as u8;
        self.phase[v] = self.assign[v];
        self.level[v] = self.trail_limits.len() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation; returns the conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.propagate_head < self.trail.len() {
            let lit = self.trail[self.propagate_head];
            self.propagate_head += 1;
            self.last_propagations += 1;
            let false_lit = !lit; // literals watching `!lit` may now be false
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let clause_id = watch_list[i];
                // Ensure false_lit is at position 1.
                let (w0, w1) = {
                    let c = &mut self.clauses[clause_id as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    (c.lits[0], c.lits[1])
                };
                debug_assert_eq!(w1, false_lit);
                if self.lit_value(w0) == 1 {
                    i += 1;
                    continue; // clause already satisfied
                }
                // Look for a replacement watch.
                let replacement = {
                    let c = &self.clauses[clause_id as usize];
                    c.lits[2..]
                        .iter()
                        .position(|&l| self.lit_value(l) != 0)
                        .map(|p| p + 2)
                };
                if let Some(p) = replacement {
                    let c = &mut self.clauses[clause_id as usize];
                    c.lits.swap(1, p);
                    let new_watch = c.lits[1];
                    self.watches[new_watch.index()].push(clause_id);
                    watch_list.swap_remove(i);
                    continue; // do not advance i: swapped-in element next
                }
                // No replacement: unit or conflict on w0.
                match self.lit_value(w0) {
                    UNASSIGNED => {
                        self.enqueue(w0, clause_id);
                        i += 1;
                    }
                    0 => {
                        // Conflict: restore remaining watches and report.
                        self.watches[false_lit.index()] = watch_list;
                        return Some(clause_id);
                    }
                    _ => unreachable!("satisfied case handled above"),
                }
            }
            // No clause re-watches `false_lit` while it is false, so the
            // list we took is the complete new watch list.
            self.watches[false_lit.index()] = watch_list;
        }
        None
    }

    fn bump(&mut self, v: Var) {
        self.activity[v.index()] += self.activity_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.activity_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: u32) -> (Vec<SatLit>, u32) {
        let current_level = self.trail_limits.len() as u32;
        let mut learned: Vec<SatLit> = Vec::new();
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0usize; // literals of current level still to resolve
        let mut clause_id = conflict;
        let mut trail_pos = self.trail.len();
        let mut asserting: Option<SatLit> = None;

        loop {
            let skip_first = asserting.is_some() as usize;
            let lits = self.clauses[clause_id as usize].lits.clone();
            for &l in lits.iter().skip(skip_first) {
                let v = l.var();
                if seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                seen[v.index()] = true;
                self.bump(v);
                if self.level[v.index()] == current_level {
                    counter += 1;
                } else {
                    learned.push(l);
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if seen[l.var().index()] {
                    asserting = Some(l);
                    break;
                }
            }
            let l = asserting.expect("trail contains a marked literal");
            counter -= 1;
            if counter == 0 {
                learned.insert(0, !l);
                break;
            }
            clause_id = self.reason[l.var().index()];
            debug_assert_ne!(clause_id, u32::MAX, "UIP literal has a reason");
            seen[l.var().index()] = false; // resolved away
        }

        let backtrack = learned[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        (learned, backtrack)
    }

    fn backtrack_to(&mut self, target: u32) {
        while self.trail_limits.len() as u32 > target {
            let limit = self.trail_limits.pop().expect("non-empty limits");
            while self.trail.len() > limit {
                let l = self.trail.pop().expect("trail entry");
                self.assign[l.var().index()] = UNASSIGNED;
                self.reason[l.var().index()] = u32::MAX;
            }
        }
        self.propagate_head = self.trail.len();
    }

    fn pick_branch(&self) -> Option<SatLit> {
        let mut best: Option<(f64, usize)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == UNASSIGNED {
                let a = self.activity[v];
                if best.is_none_or(|(ba, _)| a > ba) {
                    best = Some((a, v));
                }
            }
        }
        best.map(|(_, v)| Var(v as u32).lit(self.phase[v] == 0))
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. Learned clauses persist
    /// across calls; assumptions do not. Open scopes (see
    /// [`Solver::push_scope`]) contribute their selectors as implicit
    /// assumptions, activating the scoped clauses.
    pub fn solve_with_assumptions(&mut self, assumptions: &[SatLit]) -> SatResult {
        if self.scopes.is_empty() {
            return self.solve_assuming(assumptions);
        }
        let mut all: Vec<SatLit> = self.scopes.iter().map(|s| s.positive()).collect();
        all.extend_from_slice(assumptions);
        self.solve_assuming(&all)
    }

    fn solve_assuming(&mut self, assumptions: &[SatLit]) -> SatResult {
        self.last_conflicts = 0;
        self.last_propagations = 0;
        if self.dead {
            // Permanent unsatisfiability is a hard fact; no budget needed.
            return SatResult::Unsat;
        }
        // Budget state for this call. The Arc-backed clone is cheap and
        // frees `self` for the mutating solve loop below.
        let budget = self.budget.clone();
        let limits = budget.as_ref().map(|b| b.sat).unwrap_or_default();
        let cancel = budget.as_ref().and_then(|b| b.cancel_token().cloned());
        if let Some(b) = &budget {
            if b.interrupted().is_some() || alsrac_rt::faults::sat_budget_exhausted() {
                self.backtrack_to(0);
                return SatResult::Unknown;
            }
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.dead = true;
            return SatResult::Unsat;
        }

        let num_assumptions = assumptions.len() as u32;
        let mut restart_budget = 200u64;
        let mut conflicts_here = 0u64;
        loop {
            // (Re-)establish assumptions after any restart/backjump above
            // the assumption levels.
            while (self.trail_limits.len() as u32) < num_assumptions {
                let a = assumptions[self.trail_limits.len()];
                match self.lit_value(a) {
                    1 => {
                        // Already implied; open an empty level to keep the
                        // level-to-assumption correspondence.
                        self.trail_limits.push(self.trail.len());
                    }
                    0 => return SatResult::Unsat, // conflicting assumptions
                    _ => {
                        self.trail_limits.push(self.trail.len());
                        self.enqueue(a, u32::MAX);
                    }
                }
                if self.propagate().is_some() {
                    return SatResult::Unsat;
                }
            }

            if let Some(conflict) = self.propagate() {
                if budget.is_some() {
                    // Give up *before* processing the conflict that would
                    // pass the cap, so an `Unknown` answer always reads
                    // `last_conflicts() == cap` exactly.
                    let capped = limits
                        .max_conflicts
                        .is_some_and(|cap| self.last_conflicts >= cap);
                    // The cancel flag is one relaxed load — poll it on
                    // every conflict. The deadline needs a clock read, so
                    // poll it every 64 conflicts.
                    let cancelled = cancel.as_ref().is_some_and(CancelToken::is_tripped);
                    let timed_out = self.last_conflicts & 63 == 0
                        && budget.as_ref().is_some_and(|b| b.interrupted().is_some());
                    if capped || cancelled || timed_out {
                        self.backtrack_to(0);
                        return SatResult::Unknown;
                    }
                }
                self.conflicts += 1;
                self.last_conflicts += 1;
                conflicts_here += 1;
                if self.trail_limits.len() as u32 <= num_assumptions {
                    return SatResult::Unsat;
                }
                let (learned, backtrack) = self.analyze(conflict);
                let backtrack = backtrack.max(num_assumptions);
                if backtrack >= self.trail_limits.len() as u32 {
                    // Cannot assert below the conflict level: UNSAT under
                    // the assumptions (all its literals are assumption-level).
                    return SatResult::Unsat;
                }
                self.backtrack_to(backtrack);
                let asserting = learned[0];
                if learned.len() == 1 {
                    if self.lit_value(asserting) == 0 {
                        return SatResult::Unsat;
                    }
                    if self.lit_value(asserting) == UNASSIGNED {
                        self.enqueue(asserting, u32::MAX);
                    }
                } else {
                    let id = self.clauses.len() as u32;
                    self.watches[learned[0].index()].push(id);
                    self.watches[learned[1].index()].push(id);
                    self.clauses.push(Clause { lits: learned });
                    if self.lit_value(asserting) == UNASSIGNED {
                        self.enqueue(asserting, id);
                    }
                }
                self.activity_inc *= 1.05;
                if conflicts_here >= restart_budget {
                    conflicts_here = 0;
                    restart_budget = restart_budget * 3 / 2;
                    self.backtrack_to(num_assumptions);
                }
                continue;
            }

            // The propagation cap is checked at decision boundaries (one
            // propagate call may overshoot it, but never runs unbounded).
            if limits
                .max_propagations
                .is_some_and(|cap| self.last_propagations >= cap)
            {
                self.backtrack_to(0);
                return SatResult::Unknown;
            }

            match self.pick_branch() {
                None => return SatResult::Sat,
                Some(lit) => {
                    self.trail_limits.push(self.trail.len());
                    self.enqueue(lit, u32::MAX);
                }
            }
        }
    }

    /// The value of `v` in the model found by the last `Sat` answer.
    ///
    /// A variable can legitimately be unassigned even after `Sat` — it was
    /// allocated after the solve, or a clause added since (e.g. a blocking
    /// clause) backtracked the trail. Such variables take their *saved
    /// phase* as the default polarity (`false` for a never-assigned
    /// variable), so model queries never crash a certification run; use
    /// [`Solver::try_model_value`] to distinguish a real model bit from the
    /// default.
    pub fn model_value(&self, v: Var) -> bool {
        self.try_model_value(v)
            .unwrap_or(self.phase[v.index()] == 1)
    }

    /// The value of `v` in the current model, or `None` if `v` is
    /// unassigned (no model, or `v` was not part of the last solve).
    pub fn try_model_value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        assert!(s.add_clause(&[v.positive()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v));
        assert!(!s.add_clause(&[v.negative()]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let _ = s.new_var();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn xor_chain_is_sat() {
        // x0 ^ x1 ^ x2 = 1 encoded as CNF.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let (a, b, c) = (v[0], v[1], v[2]);
        for (sa, sb, sc) in [
            (false, false, false),
            (false, true, true),
            (true, false, true),
            (true, true, false),
        ] {
            // Forbid even-parity row (a=sa, b=sb, c=sc): the clause needs
            // the literal that is false under that row, i.e. lit(sa).
            s.add_clause(&[a.lit(sa), b.lit(sb), c.lit(sc)]);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        let parity = s.model_value(a) as u32 + s.model_value(b) as u32 + s.model_value(c) as u32;
        assert_eq!(parity % 2, 1);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][h].
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[row[0].positive(), row[1].positive()]);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (pi, pj) in row_i.iter().zip(row_j) {
                    s.add_clause(&[pi.negative(), pj.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_4_into_4_is_sat() {
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..4).map(|_| vars(&mut s, 4)).collect();
        for row in &p {
            let lits: Vec<SatLit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (pi, pj) in row_i.iter().zip(row_j) {
                    s.add_clause(&[pi.negative(), pj.negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Sat);
        // Model is a valid injection.
        for h in 0..4 {
            let count = p.iter().filter(|row| s.model_value(row[h])).count();
            assert!(count <= 1);
        }
    }

    #[test]
    fn assumptions_flip_outcomes() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve_with_assumptions(&[a.negative()]), SatResult::Sat);
        assert!(s.model_value(b));
        assert_eq!(
            s.solve_with_assumptions(&[a.negative(), b.negative()]),
            SatResult::Unsat
        );
        // Solver still usable afterwards.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn contradictory_assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert_eq!(
            s.solve_with_assumptions(&[a.positive(), a.negative()]),
            SatResult::Unsat
        );
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        for seed in 0..30u64 {
            let mut rng = alsrac_rt::Rng::from_seed(seed);
            let num_vars = 8;
            let num_clauses = rng.gen_range(8..40);
            let clauses: Vec<Vec<(usize, bool)>> = (0..num_clauses)
                .map(|_| {
                    (0..3)
                        .map(|_| (rng.gen_range(0..num_vars), rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            // Brute force.
            let brute_sat = (0..1u32 << num_vars).any(|m| {
                clauses
                    .iter()
                    .all(|c| c.iter().any(|&(v, neg)| (m >> v & 1 == 1) != neg))
            });
            // Solver.
            let mut s = Solver::new();
            let vs = vars(&mut s, num_vars);
            let mut ok = true;
            for c in &clauses {
                let lits: Vec<SatLit> = c.iter().map(|&(v, neg)| vs[v].lit(neg)).collect();
                ok &= s.add_clause(&lits);
            }
            let result = if !ok { SatResult::Unsat } else { s.solve() };
            assert_eq!(
                result,
                if brute_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                },
                "seed {seed}"
            );
            // If SAT, the model must actually satisfy all clauses.
            if result == SatResult::Sat {
                for c in &clauses {
                    assert!(c.iter().any(|&(v, neg)| s.model_value(vs[v]) != neg));
                }
            }
        }
    }

    #[test]
    fn unassigned_variables_have_default_model_values() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Allocated after the solve: unassigned, default polarity false.
        let b = s.new_var();
        assert_eq!(s.try_model_value(b), None);
        assert!(!s.model_value(b));
        assert_eq!(s.try_model_value(a), Some(true));
    }

    #[test]
    fn blocking_clause_after_sat_invalidates_model_without_panicking() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let lits: Vec<SatLit> = v.iter().map(|x| x.positive()).collect();
        s.add_clause(&lits);
        let mut models = 0;
        loop {
            if s.solve() == SatResult::Unsat {
                break;
            }
            let bits: Vec<bool> = v.iter().map(|&x| s.model_value(x)).collect();
            assert!(bits.iter().any(|&b| b));
            // Block this assignment; the add backtracks the trail, after
            // which model queries fall back to saved phases, not panics.
            let block: Vec<SatLit> = v.iter().zip(&bits).map(|(&x, &b)| x.lit(b)).collect();
            s.add_clause(&block);
            let _ = s.model_value(v[0]);
            models += 1;
            assert!(models <= 7, "more models than assignments");
        }
        assert_eq!(models, 7); // 2^3 - 1 (all-false violates the clause)
    }

    #[test]
    fn scoped_clauses_are_retracted_on_pop() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        s.push_scope();
        s.add_clause(&[a.negative()]);
        s.add_clause(&[b.negative()]);
        assert_eq!(s.solve(), SatResult::Unsat);
        s.pop_scope();
        // The contradiction lived in the scope; the base formula is SAT.
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(a) || s.model_value(b));
    }

    #[test]
    fn scopes_nest_and_combine_with_assumptions() {
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause(&[v[0].positive(), v[1].positive(), v[2].positive()]);
        s.push_scope();
        s.add_clause(&[v[0].negative()]);
        s.push_scope();
        s.add_clause(&[v[1].negative()]);
        assert_eq!(s.scope_depth(), 2);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[2]));
        assert_eq!(
            s.solve_with_assumptions(&[v[2].negative()]),
            SatResult::Unsat
        );
        s.pop_scope();
        // v1 is free again; only the outer scope's !v0 still binds.
        assert_eq!(s.solve_with_assumptions(&[v[2].negative()]), SatResult::Sat);
        assert!(s.model_value(v[1]));
        assert!(!s.model_value(v[0]));
        s.pop_scope();
        assert_eq!(s.scope_depth(), 0);
        assert_eq!(
            s.solve_with_assumptions(&[v[1].negative(), v[2].negative()]),
            SatResult::Sat
        );
        assert!(s.model_value(v[0]));
    }

    #[test]
    fn base_formula_survives_many_scope_round_trips() {
        // Learned-state reuse smoke: the base formula stays intact (and the
        // solver usable) across many contradictory scopes.
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        for (i, &x) in v.iter().enumerate() {
            let next = v[(i + 1) % v.len()];
            s.add_clause(&[x.negative(), next.positive()]); // x -> next
        }
        for round in 0..20 {
            s.push_scope();
            if round % 2 == 0 {
                s.add_clause(&[v[0].positive()]);
                s.add_clause(&[v[2].negative()]); // contradicts the implication cycle
                assert_eq!(s.solve(), SatResult::Unsat, "round {round}");
            } else {
                s.add_clause(&[v[0].positive()]);
                assert_eq!(s.solve(), SatResult::Sat, "round {round}");
                assert!(v.iter().all(|&x| s.model_value(x)), "cycle forces all");
            }
            s.pop_scope();
        }
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn solver_is_reusable_across_solves() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        for _ in 0..5 {
            assert_eq!(s.solve(), SatResult::Sat);
            assert_eq!(s.solve_with_assumptions(&[a.negative()]), SatResult::Sat);
            assert!(s.model_value(b));
        }
    }

    /// A pigeonhole instance (n+1 pigeons, n holes): UNSAT and guaranteed
    /// to need many conflicts, so budget caps actually bind.
    fn pigeonhole(s: &mut Solver, n: usize) {
        let p: Vec<Vec<Var>> = (0..n + 1).map(|_| vars(s, n)).collect();
        for row in &p {
            let lits: Vec<SatLit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (pi, pj) in row_i.iter().zip(row_j) {
                    s.add_clause(&[pi.negative(), pj.negative()]);
                }
            }
        }
    }

    #[test]
    fn unknown_is_returned_exactly_at_the_conflict_cap() {
        use alsrac_rt::budget::Budget;
        // Reference: how many conflicts does the unbudgeted solve need?
        let mut reference = Solver::new();
        pigeonhole(&mut reference, 6);
        assert_eq!(reference.solve(), SatResult::Unsat);
        let needed = reference.last_conflicts();
        assert!(needed > 10, "instance too easy to exercise the cap");

        for cap in [0, 1, needed / 2, needed - 1] {
            let mut s = Solver::new();
            pigeonhole(&mut s, 6);
            s.set_budget(Budget::default().with_sat_conflicts(cap));
            assert_eq!(s.solve(), SatResult::Unknown, "cap {cap}");
            assert_eq!(s.last_conflicts(), cap, "spent exactly the cap");
        }
        // A cap at (or above) the true requirement answers normally and
        // spends the same deterministic conflict count.
        let mut s = Solver::new();
        pigeonhole(&mut s, 6);
        s.set_budget(Budget::default().with_sat_conflicts(needed));
        assert_eq!(s.solve(), SatResult::Unsat);
        assert_eq!(s.last_conflicts(), needed);
    }

    #[test]
    fn propagation_cap_degrades_to_unknown() {
        use alsrac_rt::budget::Budget;
        let mut reference = Solver::new();
        pigeonhole(&mut reference, 6);
        assert_eq!(reference.solve(), SatResult::Unsat);
        let needed = reference.last_propagations();
        assert!(needed > 10);

        let mut s = Solver::new();
        pigeonhole(&mut s, 6);
        s.set_budget(Budget::default().with_sat_propagations(needed / 2));
        assert_eq!(s.solve(), SatResult::Unknown);
        assert!(s.last_propagations() < needed);
        s.clear_budget();
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn budget_exhausted_scoped_solve_leaves_the_solver_reusable() {
        use alsrac_rt::budget::Budget;
        // Base formula: a simple implication cycle (SAT).
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        for (i, &x) in v.iter().enumerate() {
            s.add_clause(&[x.negative(), v[(i + 1) % v.len()].positive()]);
        }
        // Inside a scope, pile on a hard UNSAT instance and exhaust the
        // budget on it.
        s.push_scope();
        pigeonhole(&mut s, 6);
        s.set_budget(Budget::default().with_sat_conflicts(5));
        assert_eq!(s.solve(), SatResult::Unknown);
        // Popping the scope must still retire the scoped clauses (and any
        // learned clauses derived from them) even though the last answer
        // was Unknown.
        s.pop_scope();
        assert_eq!(s.scope_depth(), 0);
        s.clear_budget();
        assert_eq!(s.solve(), SatResult::Sat, "base formula intact after pop");
        assert_eq!(s.solve_with_assumptions(&[v[0].positive()]), SatResult::Sat);
        assert!(v.iter().all(|&x| s.model_value(x)), "cycle forces all true");
    }

    #[test]
    fn tripped_cancel_token_yields_unknown_and_untripped_does_not() {
        use alsrac_rt::budget::{Budget, CancelToken};
        let token = CancelToken::new();
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        s.set_budget(Budget::default().with_cancel(token.clone()));
        assert_eq!(s.solve(), SatResult::Unsat, "untripped token is inert");
        // The UNSAT answer made the solver permanently dead — a hard fact
        // that rightly beats any budget. Use a fresh solver for the
        // tripped-token path.
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        s.set_budget(Budget::default().with_cancel(token.clone()));
        token.trip();
        assert_eq!(s.solve(), SatResult::Unknown, "tripped at entry");
        s.clear_budget();
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn expired_deadline_yields_unknown() {
        use alsrac_rt::budget::Budget;
        use std::time::Duration;
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        s.set_budget(Budget::default().with_deadline_after(Duration::ZERO));
        assert_eq!(s.solve(), SatResult::Unknown);
    }

    #[test]
    fn unbudgeted_solver_never_answers_unknown_and_counts_deterministically() {
        let mut a = Solver::new();
        pigeonhole(&mut a, 5);
        let mut b = Solver::new();
        pigeonhole(&mut b, 5);
        assert_eq!(a.solve(), SatResult::Unsat);
        assert_eq!(b.solve(), SatResult::Unsat);
        assert_eq!(a.last_conflicts(), b.last_conflicts());
        assert_eq!(a.last_propagations(), b.last_propagations());
    }
}
