//! Model counting over miter inputs: exact error rates with a guarantee.
//!
//! The number of primary-input assignments on which the approximate
//! circuit differs from the original, divided by `2^n`, **is** the error
//! rate — not an estimate of it. Because the circuits are deterministic,
//! counting projected onto the inputs equals counting full models, so two
//! strategies apply:
//!
//! * **Enumeration** ([`count_errors_exact`]): repeatedly solve the miter
//!   with the any-difference assumption, block each witnessed input
//!   assignment, and count until UNSAT. Exact; practical while the
//!   differing-input count stays small (and always for
//!   `n <= `[`ENUMERATION_INPUT_LIMIT`]).
//! * **XOR-hash approximate counting** ([`count_errors_approx`]): the
//!   ApproxMC construction — partition the input space with `m` random
//!   XOR parity constraints, enumerate one cell to a pivot, estimate
//!   `cell × 2^m`, and take the median of `t` independent rounds for an
//!   (ε, δ) guarantee: the result is within a `(1+ε)` factor of the true
//!   count with probability at least `1 − δ`.
//!
//! Every strategy runs inside solver scopes ([`Solver::push_scope`]), so
//! blocking clauses and hash constraints retract cleanly while learned
//! clauses about the miter itself persist across queries — the same
//! [`Miter`] can be counted, WCE-certified, and counted again.

use alsrac_rt::{derive_indexed, Rng, Stream};

use crate::miter::Miter;
use crate::{SatLit, SatResult, Solver};

/// Inputs up to this many are always counted by exact enumeration in
/// [`count_errors`] (2^20 worst-case models; each blocked by one clause).
pub const ENUMERATION_INPUT_LIMIT: u32 = 20;

/// Default tolerance factor ε for auto-mode approximate counting.
pub const DEFAULT_EPSILON: f64 = 0.8;

/// Default failure probability δ for auto-mode approximate counting.
pub const DEFAULT_DELTA: f64 = 0.2;

/// A certified count of differing input assignments.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorCount {
    /// Number of primary inputs (the space has `2^num_inputs` points).
    pub num_inputs: u32,
    /// Differing-input count: exact, or the median hash estimate.
    pub count: u128,
    /// True when `count` is exact (enumeration completed under its cap).
    pub exact: bool,
    /// Tolerance factor of the guarantee (0 when exact).
    pub epsilon: f64,
    /// Failure probability of the guarantee (0 when exact).
    pub delta: f64,
    /// Total SAT solves issued while counting.
    pub sat_queries: u64,
    /// False when a solver budget cut counting short
    /// ([`SatResult::Unknown`]): `count` is then only a proven **lower
    /// bound** with no (ε, δ) guarantee, and `exact` is false.
    pub complete: bool,
}

impl ErrorCount {
    /// The certified error rate `count / 2^num_inputs`.
    pub fn rate(&self) -> f64 {
        self.count as f64 / 2f64.powi(self.num_inputs as i32)
    }
}

/// Counts differing inputs with an automatic strategy choice: exact
/// enumeration for `n <= `[`ENUMERATION_INPUT_LIMIT`], otherwise
/// approximate counting at ([`DEFAULT_EPSILON`], [`DEFAULT_DELTA`]).
///
/// `seed` only influences the approximate path (hash randomness).
pub fn count_errors(miter: &mut Miter, seed: u64) -> ErrorCount {
    if miter.inputs().len() as u32 <= ENUMERATION_INPUT_LIMIT {
        count_errors_exact(miter)
    } else {
        count_errors_approx(miter, DEFAULT_EPSILON, DEFAULT_DELTA, seed)
    }
}

/// Counts differing inputs exactly by enumeration with blocking clauses.
///
/// Runs in a scope, so the miter stays reusable afterwards. Worst case
/// `2^n + 1` SAT solves; intended for small input counts or small
/// difference sets.
pub fn count_errors_exact(miter: &mut Miter) -> ErrorCount {
    let mut queries = 0u64;
    let (count, complete) = enumerate(miter, u128::MAX, &mut queries);
    ErrorCount {
        num_inputs: miter.inputs().len() as u32,
        count,
        exact: complete,
        epsilon: 0.0,
        delta: 0.0,
        sat_queries: queries,
        complete,
    }
}

/// Counts differing inputs with the XOR-hash (ε, δ) guarantee.
///
/// If the true count turns out to be at most the pivot
/// (`⌈9.84 (1 + ε/(1+ε)) (1 + 1/ε)²⌉`), the initial bounded enumeration
/// already finishes and the result is flagged exact.
///
/// # Panics
///
/// Panics unless `0 < epsilon` and `0 < delta < 1`.
pub fn count_errors_approx(miter: &mut Miter, epsilon: f64, delta: f64, seed: u64) -> ErrorCount {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
    let n = miter.inputs().len() as u32;
    let pivot =
        (9.84 * (1.0 + epsilon / (1.0 + epsilon)) * (1.0 + 1.0 / epsilon).powi(2)).ceil() as u128;
    let rounds = (17.0 * (3.0 / delta).log2()).ceil() as u64;
    let mut queries = 0u64;

    // One bounded enumeration first: counts <= pivot need no hashing and
    // come out exact (this is also ApproxMC's base case).
    let (low, low_complete) = enumerate(miter, pivot, &mut queries);
    if !low_complete {
        return incomplete_count(n, low, queries);
    }
    if low <= pivot {
        return ErrorCount {
            num_inputs: n,
            count: low,
            exact: true,
            epsilon: 0.0,
            delta: 0.0,
            sat_queries: queries,
            complete: true,
        };
    }

    let mut estimates: Vec<u128> = Vec::with_capacity(rounds as usize);
    for round in 0..rounds {
        let mut rng = Rng::from_seed(derive_indexed(seed, Stream::Hashing, round));
        // Grow the hash until the cell shrinks under the pivot. Each XOR
        // halves the expected cell size, so the first m with a small,
        // nonempty cell yields the round's estimate `cell * 2^m`.
        for m in 1..=n {
            let hash_inputs: Vec<crate::Var> = miter.inputs().to_vec();
            miter.solver.push_scope();
            let mut feasible = true;
            for _ in 0..m {
                if !add_random_xor(&mut miter.solver, &hash_inputs, &mut rng) {
                    feasible = false;
                }
            }
            let (cell, cell_complete) = if feasible {
                enumerate(miter, pivot, &mut queries)
            } else {
                (0, true) // an empty-support XOR with odd parity: cell is empty
            };
            miter.solver.pop_scope();
            if !cell_complete {
                // A budget-starved cell count would bias the median; stop
                // and report the sound lower bound instead of a wrong
                // estimate.
                return incomplete_count(n, low.min(pivot + 1), queries);
            }
            if cell <= pivot {
                if cell > 0 {
                    estimates.push(cell << m);
                }
                break; // empty cell: the round failed, discard it
            }
        }
    }

    if estimates.is_empty() {
        // Every round over-hashed (vanishingly unlikely at these sizes):
        // fall back to full enumeration rather than guess.
        let (count, complete) = enumerate(miter, u128::MAX, &mut queries);
        if !complete {
            return incomplete_count(n, count, queries);
        }
        return ErrorCount {
            num_inputs: n,
            count,
            exact: true,
            epsilon: 0.0,
            delta: 0.0,
            sat_queries: queries,
            complete: true,
        };
    }
    estimates.sort_unstable();
    ErrorCount {
        num_inputs: n,
        count: estimates[estimates.len() / 2],
        exact: false,
        epsilon,
        delta,
        sat_queries: queries,
        complete: true,
    }
}

/// An [`ErrorCount`] for a budget-interrupted count: `count` is only a
/// lower bound, carries no guarantee, and is flagged incomplete.
fn incomplete_count(num_inputs: u32, count: u128, sat_queries: u64) -> ErrorCount {
    ErrorCount {
        num_inputs,
        count,
        exact: false,
        epsilon: 0.0,
        delta: 0.0,
        sat_queries,
        complete: false,
    }
}

/// Enumerates differing input assignments under the currently open scopes,
/// blocking each one, until UNSAT or the count exceeds `cap` (then returns
/// `cap + 1`). Runs in its own scope so the blocking clauses retract.
///
/// The second return value is false when a budgeted solve answered
/// [`SatResult::Unknown`]: the count is then only a lower bound (the
/// models enumerated so far), never a silently wrong total.
fn enumerate(miter: &mut Miter, cap: u128, queries: &mut u64) -> (u128, bool) {
    miter.solver.push_scope();
    let differs = miter.differs();
    let mut count = 0u128;
    let mut complete = true;
    loop {
        *queries += 1;
        match miter.solver.solve_with_assumptions(&[differs]) {
            SatResult::Unsat => break,
            SatResult::Unknown => {
                complete = false;
                break;
            }
            SatResult::Sat => {
                // Read the witness before add_clause invalidates the model.
                let bits = miter.model_inputs();
                count += 1;
                if count > cap {
                    break;
                }
                let block: Vec<SatLit> = miter
                    .inputs()
                    .iter()
                    .zip(&bits)
                    .map(|(&v, &bit)| v.lit(bit))
                    .collect();
                miter.solver.add_clause(&block);
            }
        }
    }
    miter.solver.pop_scope();
    (count, complete)
}

/// Adds one random XOR parity constraint over `inputs` to the innermost
/// scope: each input joins the parity with probability 1/2, and the
/// required parity bit is random too.
///
/// Returns false when the constraint is unsatisfiable by construction
/// (empty support, odd parity) — the caller's cell is empty.
fn add_random_xor(solver: &mut Solver, inputs: &[crate::Var], rng: &mut Rng) -> bool {
    let mut lits: Vec<SatLit> = Vec::new();
    for &v in inputs {
        if rng.next_u64() & 1 != 0 {
            lits.push(v.positive());
        }
    }
    let parity = rng.next_u64() & 1 != 0; // require XOR(lits) == parity
    match lits.len() {
        0 => return !parity, // XOR() == false: trivially true or empty
        1 => {
            let l = if parity { lits[0] } else { !lits[0] };
            solver.add_clause(&[l]);
            return true;
        }
        _ => {}
    }
    // Chain: acc = l0 ^ l1 ^ ... via fresh variables, 4 clauses per link.
    let mut acc = lits[0];
    for &l in &lits[1..] {
        let z = solver.new_var();
        solver.add_clause(&[z.negative(), acc, l]);
        solver.add_clause(&[z.negative(), !acc, !l]);
        solver.add_clause(&[z.positive(), !acc, l]);
        solver.add_clause(&[z.positive(), acc, !l]);
        acc = z.positive();
    }
    solver.add_clause(&[if parity { acc } else { !acc }]);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use alsrac_aig::{Aig, Lit};

    /// Brute-force differing-input count by evaluation.
    fn brute_count(a: &Aig, b: &Aig) -> u128 {
        let n = a.num_inputs();
        let mut count = 0u128;
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            if a.evaluate(&bits) != b.evaluate(&bits) {
                count += 1;
            }
        }
        count
    }

    fn broken_adder(width: usize) -> (Aig, Aig) {
        let original = alsrac_circuits::arith::ripple_carry_adder(width);
        let mut approx = original.clone();
        approx.set_output_lit(0, Lit::FALSE);
        (original, approx)
    }

    #[test]
    fn exact_count_matches_brute_force() {
        let (original, approx) = broken_adder(3);
        let want = brute_count(&original, &approx);
        let mut miter = Miter::new(&original, &approx);
        let got = count_errors_exact(&mut miter);
        assert!(got.exact);
        assert_eq!(got.count, want);
        assert_eq!(got.num_inputs, 6);
    }

    #[test]
    fn equivalent_circuits_count_zero() {
        let a = alsrac_circuits::arith::carry_lookahead_adder(3);
        let mut miter = Miter::new(&a, &a.clone());
        let got = count_errors(&mut miter, 7);
        assert!(got.exact);
        assert_eq!(got.count, 0);
        assert_eq!(got.rate(), 0.0);
    }

    #[test]
    fn count_is_repeatable_on_one_miter() {
        let (original, approx) = broken_adder(2);
        let mut miter = Miter::new(&original, &approx);
        let first = count_errors_exact(&mut miter);
        let second = count_errors_exact(&mut miter);
        assert_eq!(first.count, second.count);
        // Scope bookkeeping must be balanced.
        assert_eq!(miter.solver.scope_depth(), 0);
    }

    #[test]
    fn approximate_count_is_within_tolerance() {
        // Small enough to brute-force, large enough that the hash path
        // engages (count >> pivot would need a big circuit; instead force
        // the approximate path directly and rely on the fallback-free
        // round logic).
        let (original, approx) = broken_adder(4);
        let want = brute_count(&original, &approx);
        let mut miter = Miter::new(&original, &approx);
        let eps = 0.8;
        let got = count_errors_approx(&mut miter, eps, 0.2, 42);
        if got.exact {
            assert_eq!(got.count, want); // finished under the pivot
        } else {
            let lo = (want as f64 / (1.0 + eps)).floor() as u128;
            let hi = (want as f64 * (1.0 + eps)).ceil() as u128;
            assert!(
                (lo..=hi).contains(&got.count),
                "estimate {} outside [{lo}, {hi}] (true {want})",
                got.count
            );
        }
    }

    #[test]
    fn approximate_count_is_deterministic_per_seed() {
        let (original, approx) = broken_adder(4);
        let mut m1 = Miter::new(&original, &approx);
        let mut m2 = Miter::new(&original, &approx);
        let a = count_errors_approx(&mut m1, 0.5, 0.2, 9);
        let b = count_errors_approx(&mut m2, 0.5, 0.2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_starved_count_is_flagged_incomplete_not_wrong() {
        use alsrac_rt::budget::Budget;
        let (original, approx) = broken_adder(3);
        let want = brute_count(&original, &approx);
        assert!(want > 0);
        let mut miter = Miter::new(&original, &approx);
        // A zero-propagation cap makes every solve answer Unknown: the
        // enumeration sees no models at all. The hazard this pins down is
        // a starved count masquerading as "exactly 0 errors".
        miter
            .solver
            .set_budget(Budget::default().with_sat_propagations(0));
        let starved = count_errors_exact(&mut miter);
        assert!(!starved.complete, "Unknown must be promoted");
        assert!(
            !starved.exact,
            "an incomplete count must not claim exactness"
        );
        assert!(starved.count <= want, "count must stay a lower bound");
        assert_eq!(miter.solver.scope_depth(), 0, "scopes stay balanced");
        // Clearing the budget restores full service on the same miter.
        miter.solver.clear_budget();
        let full = count_errors_exact(&mut miter);
        assert!(full.complete && full.exact);
        assert_eq!(full.count, want);
    }

    #[test]
    fn budget_starved_approximate_count_is_flagged_incomplete() {
        use alsrac_rt::budget::Budget;
        let (original, approx) = broken_adder(3);
        let mut miter = Miter::new(&original, &approx);
        miter
            .solver
            .set_budget(Budget::default().with_sat_propagations(0));
        let got = count_errors_approx(&mut miter, 0.8, 0.2, 1);
        assert!(!got.complete);
        assert!(!got.exact);
        assert_eq!(miter.solver.scope_depth(), 0);
    }
}
