//! Combinational equivalence checking and SAT-based resubstitution
//! feasibility.
//!
//! Two applications of the [`Solver`]:
//!
//! * [`equivalent`] — the classic miter construction: two circuits over
//!   shared inputs, outputs pairwise XORed and ORed; UNSAT means
//!   equivalent. This verifies the exact optimizer and mappers beyond the
//!   exhaustive-simulation reach of unit tests.
//! * [`exact_resub_feasible`] / [`exact_resub_function`] — the *exact*
//!   version of the paper's Theorem 1 (from Mishchenko et al. [18]): a
//!   divisor set can express a node iff no two input patterns agree on all
//!   divisors but disagree on the node. ALSRAC's point is to replace this
//!   SAT query with simulation; implementing both sides lets the harness
//!   measure the runtime gap the paper claims.

use alsrac_aig::{Aig, Lit};

use crate::encode::Encoding;
use crate::{SatLit, SatResult, Solver, Var};

/// Outcome of an equivalence check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CecResult {
    /// The circuits implement the same function.
    Equivalent,
    /// A distinguishing input assignment (one bool per primary input).
    Counterexample(Vec<bool>),
}

/// Checks whether two circuits with identical interfaces are functionally
/// equivalent.
///
/// # Panics
///
/// Panics if the circuits disagree in input or output counts.
pub fn equivalent(a: &Aig, b: &Aig) -> CecResult {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input arity");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output arity");
    let mut solver = Solver::new();
    let (enc_a, inputs) = Encoding::new(&mut solver, a);
    let enc_b = Encoding::with_inputs(&mut solver, b, &inputs);

    // diff_o <-> (a_o XOR b_o); assert OR(diff_o).
    let mut diffs: Vec<SatLit> = Vec::with_capacity(a.num_outputs());
    for (out_a, out_b) in a.outputs().iter().zip(b.outputs()) {
        let la = enc_a.sat_lit(out_a.lit);
        let lb = enc_b.sat_lit(out_b.lit);
        let d = solver.new_var();
        // d <-> la xor lb.
        solver.add_clause(&[d.negative(), la, lb]);
        solver.add_clause(&[d.negative(), !la, !lb]);
        solver.add_clause(&[d.positive(), !la, lb]);
        solver.add_clause(&[d.positive(), la, !lb]);
        diffs.push(d.positive());
    }
    if !solver.add_clause(&diffs) {
        return CecResult::Equivalent; // no outputs: vacuously equivalent
    }
    match solver.solve() {
        // CEC builds its own unbudgeted solver, which never answers
        // Unknown (see `Solver::set_budget`).
        SatResult::Unknown => unreachable!("unbudgeted solver answered Unknown"),
        SatResult::Unsat => CecResult::Equivalent,
        SatResult::Sat => {
            // Inputs a propagation never reached (pure in the miter) are
            // unassigned in the model; `model_value` fills them with the
            // saved phase, and any completion of a partial model is a
            // valid counterexample.
            CecResult::Counterexample(inputs.iter().map(|&v| solver.model_value(v)).collect())
        }
    }
}

/// Checks the paper's Theorem 1 *exactly* with SAT: can some function of
/// the `divisors` reproduce the signal `node` on **all** input patterns?
///
/// Encodes two copies of the circuit over independent inputs, asserts that
/// every divisor agrees across the copies while `node` disagrees; UNSAT
/// means the divisors are feasible.
pub fn exact_resub_feasible(aig: &Aig, node: Lit, divisors: &[Lit]) -> bool {
    let mut solver = Solver::new();
    let (enc1, _inputs1) = Encoding::new(&mut solver, aig);
    let (enc2, _inputs2) = Encoding::new(&mut solver, aig);

    for &d in divisors {
        let l1 = enc1.sat_lit(d);
        let l2 = enc2.sat_lit(d);
        // l1 <-> l2.
        solver.add_clause(&[!l1, l2]);
        solver.add_clause(&[l1, !l2]);
    }
    let n1 = enc1.sat_lit(node);
    let n2 = enc2.sat_lit(node);
    solver.add_clause(&[n1, n2]);
    solver.add_clause(&[!n1, !n2]);
    solver.solve() == SatResult::Unsat
}

/// Derives the exact resubstitution function over feasible divisors as a
/// truth table (variable `i` = `divisors[i]`), with `None` for divisor
/// patterns that no input can produce (don't-cares) and for infeasible
/// divisor sets the first conflicting pattern makes the result `Err`.
///
/// For each divisor pattern, two SAT queries establish whether the node
/// can be 1 and whether it can be 0 under that pattern:
///
/// * only 1 → on-set; * only 0 → off-set; * neither → unreachable
///   (don't-care); * both → the divisors are infeasible.
///
/// # Errors
///
/// Returns `Err(pattern)` with the first divisor pattern that demands both
/// node values (infeasible divisors).
///
/// # Panics
///
/// Panics if `divisors` has more than 16 entries (4 already means 16
/// patterns × 2 SAT calls).
pub fn exact_resub_function(
    aig: &Aig,
    node: Lit,
    divisors: &[Lit],
) -> Result<Vec<Option<bool>>, usize> {
    assert!(divisors.len() <= 16, "too many divisors for enumeration");
    let mut solver = Solver::new();
    let (enc, _inputs) = Encoding::new(&mut solver, aig);
    let divisor_lits: Vec<SatLit> = divisors.iter().map(|&d| enc.sat_lit(d)).collect();
    let node_lit = enc.sat_lit(node);

    let mut table = Vec::with_capacity(1 << divisors.len());
    for pattern in 0..1usize << divisors.len() {
        let mut assumptions: Vec<SatLit> = divisor_lits
            .iter()
            .enumerate()
            .map(|(i, &l)| if pattern >> i & 1 != 0 { l } else { !l })
            .collect();
        assumptions.push(node_lit);
        let can_be_one = solver.solve_with_assumptions(&assumptions) == SatResult::Sat;
        *assumptions.last_mut().expect("node literal") = !node_lit;
        let can_be_zero = solver.solve_with_assumptions(&assumptions) == SatResult::Sat;
        table.push(match (can_be_one, can_be_zero) {
            (true, true) => return Err(pattern),
            (true, false) => Some(true),
            (false, true) => Some(false),
            (false, false) => None, // unreachable divisor pattern
        });
    }
    Ok(table)
}

/// Forces a variable assignment as assumptions (helper for external users
/// assembling custom queries).
pub fn assume_inputs(inputs: &[Var], bits: &[bool]) -> Vec<SatLit> {
    inputs
        .iter()
        .zip(bits)
        .map(|(&v, &bit)| v.lit(!bit))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_circuits_pass() {
        let a = alsrac_circuits::arith::ripple_carry_adder(4);
        let b = alsrac_circuits::arith::carry_lookahead_adder(4);
        assert_eq!(equivalent(&a, &b), CecResult::Equivalent);
    }

    #[test]
    fn optimizer_output_is_sat_equivalent() {
        // The whole point: CEC verifies resyn2-lite beyond exhaustive reach.
        let a = alsrac_circuits::arith::wallace_multiplier(4);
        let b = alsrac_synth::optimize(&a);
        assert_eq!(equivalent(&a, &b), CecResult::Equivalent);
    }

    #[test]
    fn different_circuits_yield_counterexamples() {
        let a = alsrac_circuits::arith::ripple_carry_adder(3);
        let mut b = a.clone();
        b.set_output_lit(0, alsrac_aig::Lit::FALSE);
        let CecResult::Counterexample(cex) = equivalent(&a, &b) else {
            panic!("expected a counterexample");
        };
        // The counterexample must actually distinguish them.
        assert_ne!(a.evaluate(&cex), b.evaluate(&cex));
    }

    #[test]
    fn theorem1_sat_check_matches_simulation_on_fig1() {
        // The paper's Example 2: {u, z} cannot exactly resubstitute v.
        let mut aig = alsrac_aig::Aig::new("fig1");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let u = aig.or(c, d);
        let anb = aig.and(a, !b);
        let bnc = aig.and(b, !c);
        let z = aig.or(anb, bnc);
        let v = aig.xor(z, !c);
        aig.add_output("v", v);
        assert!(!exact_resub_feasible(&aig, v, &[u, z]));
        // But {z, c} is feasible: v = z ^ !c is a function of them.
        assert!(exact_resub_feasible(&aig, v, &[z, c]));
    }

    #[test]
    fn exact_function_derivation() {
        let mut aig = alsrac_aig::Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output("x", x);
        let table = exact_resub_function(&aig, x, &[a, b]).expect("feasible");
        assert_eq!(
            table,
            vec![Some(false), Some(true), Some(true), Some(false)]
        );
    }

    #[test]
    fn exact_function_reports_infeasibility() {
        let mut aig = alsrac_aig::Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output("x", x);
        // x is not a function of a alone.
        assert!(exact_resub_function(&aig, x, &[a]).is_err());
    }

    #[test]
    fn unreachable_divisor_patterns_are_dont_cares() {
        let mut aig = alsrac_aig::Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let and = aig.and(a, b);
        let or = aig.or(a, b);
        aig.add_output("o", or);
        // Divisors {and, or}: pattern (and=1, or=0) is unreachable.
        let table = exact_resub_function(&aig, or, &[and, or]).expect("feasible");
        assert_eq!(table[0b01], None); // and=1, or=0 impossible
        assert_eq!(table[0b11], Some(true));
    }
}
