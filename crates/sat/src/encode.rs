//! Tseitin encoding of AIGs into CNF.

use alsrac_aig::{Aig, Lit, Node, NodeId};

use crate::{SatLit, Solver, Var};

/// A CNF encoding of one copy of an [`Aig`] inside a [`Solver`].
///
/// Every node gets a solver variable; AND gates are encoded with the three
/// standard Tseitin clauses. Multiple encodings of the same or different
/// graphs can coexist in one solver (that is how miters are built).
#[derive(Clone, Debug)]
pub struct Encoding {
    node_vars: Vec<Var>,
}

impl Encoding {
    /// Encodes `aig` into `solver`, using `inputs` as the variables of the
    /// primary inputs (enables input sharing between two encodings).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != aig.num_inputs()`.
    pub fn with_inputs(solver: &mut Solver, aig: &Aig, inputs: &[Var]) -> Encoding {
        assert_eq!(inputs.len(), aig.num_inputs(), "input variable count");
        let mut node_vars = Vec::with_capacity(aig.num_nodes());
        for id in aig.iter_nodes() {
            let var = match *aig.node(id) {
                Node::Const => {
                    let v = solver.new_var();
                    solver.add_clause(&[v.negative()]); // constant false
                    v
                }
                Node::Input { index } => inputs[index as usize],
                Node::And { f0, f1 } => {
                    let v = solver.new_var();
                    let a = lit_to_sat(&node_vars, f0);
                    let b = lit_to_sat(&node_vars, f1);
                    // v <-> a & b.
                    solver.add_clause(&[v.negative(), a]);
                    solver.add_clause(&[v.negative(), b]);
                    solver.add_clause(&[v.positive(), !a, !b]);
                    v
                }
            };
            node_vars.push(var);
        }
        Encoding { node_vars }
    }

    /// Encodes `aig` with fresh input variables, returning them too.
    pub fn new(solver: &mut Solver, aig: &Aig) -> (Encoding, Vec<Var>) {
        let inputs: Vec<Var> = (0..aig.num_inputs()).map(|_| solver.new_var()).collect();
        let enc = Encoding::with_inputs(solver, aig, &inputs);
        (enc, inputs)
    }

    /// The solver literal corresponding to an AIG literal.
    pub fn sat_lit(&self, lit: Lit) -> SatLit {
        lit_to_sat(&self.node_vars, lit)
    }

    /// The solver variable of a node.
    pub fn node_var(&self, node: NodeId) -> Var {
        self.node_vars[node.index()]
    }
}

fn lit_to_sat(node_vars: &[Var], lit: Lit) -> SatLit {
    node_vars[lit.node().index()].lit(lit.is_complement())
}

/// Adds a clause forcing at least one of `lits` (convenience re-export of
/// the common pattern when assembling miters by hand).
pub fn at_least_one(solver: &mut Solver, lits: &[SatLit]) -> bool {
    solver.add_clause(lits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SatResult;

    #[test]
    fn encoding_agrees_with_evaluation() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.xor(a, b);
        let y = aig.mux(c, x, a);
        aig.add_output("y", y);

        // For every input pattern, assert the inputs and check the forced
        // output value matches the evaluator.
        for p in 0..8u32 {
            let mut solver = Solver::new();
            let (enc, inputs) = Encoding::new(&mut solver, &aig);
            let bits: Vec<bool> = (0..3).map(|i| p >> i & 1 != 0).collect();
            let want = aig.evaluate(&bits)[0];
            let assumptions: Vec<SatLit> = inputs
                .iter()
                .zip(&bits)
                .map(|(&v, &bit)| v.lit(!bit))
                .collect();
            // Force output to the complement of the expected value: UNSAT.
            let mut with_bad = assumptions.clone();
            with_bad.push(if want {
                !enc.sat_lit(y)
            } else {
                enc.sat_lit(y)
            });
            assert_eq!(
                solver.solve_with_assumptions(&with_bad),
                SatResult::Unsat,
                "pattern {p:03b}"
            );
            // Force the expected value: SAT.
            let mut with_good = assumptions;
            with_good.push(if want {
                enc.sat_lit(y)
            } else {
                !enc.sat_lit(y)
            });
            assert_eq!(solver.solve_with_assumptions(&with_good), SatResult::Sat);
        }
    }

    #[test]
    fn constant_node_is_false() {
        let mut aig = Aig::new("t");
        let _a = aig.add_input("a");
        aig.add_output("zero", Lit::FALSE);
        let mut solver = Solver::new();
        let (enc, _inputs) = Encoding::new(&mut solver, &aig);
        assert_eq!(
            solver.solve_with_assumptions(&[enc.sat_lit(Lit::FALSE)]),
            SatResult::Unsat
        );
        assert_eq!(
            solver.solve_with_assumptions(&[enc.sat_lit(Lit::TRUE)]),
            SatResult::Sat
        );
    }

    #[test]
    fn shared_inputs_couple_two_encodings() {
        // Encode x = a&b twice over shared inputs: the two outputs can
        // never differ.
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("x", x);

        let mut solver = Solver::new();
        let (enc1, inputs) = Encoding::new(&mut solver, &aig);
        let enc2 = Encoding::with_inputs(&mut solver, &aig, &inputs);
        // Ask for a difference.
        assert_eq!(
            solver.solve_with_assumptions(&[enc1.sat_lit(x), !enc2.sat_lit(x)]),
            SatResult::Unsat
        );
    }
}
