//! Miter construction between an original and an approximate circuit.
//!
//! A [`Miter`] encodes both circuits over **shared** input variables
//! ([`Encoding::with_inputs`]), materializes every output into its own
//! solver variable, and defines per-output difference variables plus a
//! single *any-difference* variable. On top of that it can certify the
//! **maximum error distance** (WCE): the outputs are interpreted as
//! unsigned little-endian integers (output `i` contributes `2^i`, matching
//! `alsrac-metrics`), an absolute-difference circuit is encoded once, and
//! each `distance > t` query encodes a greater-than comparator inside a
//! solver scope so it retracts cleanly while learned clauses persist.
//!
//! The any-difference variable is asserted via *assumptions*, never as a
//! clause, so one miter serves error-rate counting ([`crate::count`]) and
//! WCE certification back to back.

use alsrac_aig::{Aig, Lit};

use crate::encode::Encoding;
use crate::{SatLit, SatResult, Solver, Var};

/// A two-circuit miter with materialized outputs and WCE machinery.
pub struct Miter {
    /// The underlying solver; exposed so counting and certification
    /// drivers can push scopes and add constraints of their own.
    pub solver: Solver,
    inputs: Vec<Var>,
    diff_any: Var,
    /// Bits of |original - approx| (LSB first); empty when the circuits
    /// have more than 63 outputs (distance undecodable, as in metrics).
    dist_bits: Vec<Var>,
    /// Witness of the most recent `Sat` distance query: (distance, inputs).
    last_witness: Option<(u64, Vec<bool>)>,
}

impl Miter {
    /// Builds the miter between `original` and `approx`.
    ///
    /// # Panics
    ///
    /// Panics if the circuits disagree in input or output counts.
    pub fn new(original: &Aig, approx: &Aig) -> Miter {
        assert_eq!(
            original.num_inputs(),
            approx.num_inputs(),
            "miter input arity"
        );
        assert_eq!(
            original.num_outputs(),
            approx.num_outputs(),
            "miter output arity"
        );
        let mut solver = Solver::new();
        let (enc_a, inputs) = Encoding::new(&mut solver, original);
        let enc_b = Encoding::with_inputs(&mut solver, approx, &inputs);

        // Materialize every output literal into its own variable so the
        // distance circuit below can be encoded over plain `Var`s.
        let out_a = materialize(&mut solver, original, &enc_a);
        let out_b = materialize(&mut solver, approx, &enc_b);

        // diff_o <-> out_a[o] xor out_b[o]; diff_any <-> OR(diff_o).
        let mut diffs: Vec<SatLit> = Vec::with_capacity(out_a.len());
        for (&a, &b) in out_a.iter().zip(&out_b) {
            let d = solver.new_var();
            solver.add_clause(&[d.negative(), a.positive(), b.positive()]);
            solver.add_clause(&[d.negative(), a.negative(), b.negative()]);
            solver.add_clause(&[d.positive(), a.negative(), b.positive()]);
            solver.add_clause(&[d.positive(), a.positive(), b.negative()]);
            diffs.push(d.positive());
        }
        let diff_any = solver.new_var();
        let mut any_clause: Vec<SatLit> = Vec::with_capacity(diffs.len() + 1);
        any_clause.push(diff_any.negative());
        for &d in &diffs {
            solver.add_clause(&[!d, diff_any.positive()]);
            any_clause.push(d);
        }
        solver.add_clause(&any_clause);

        // Absolute difference |A - B|, encoded once over the materialized
        // output variables. Only decodable up to 63 outputs.
        let dist_bits = if (1..=63).contains(&original.num_outputs()) {
            let width = original.num_outputs();
            let abs = abs_diff_aig(width);
            let mut io: Vec<Var> = Vec::with_capacity(2 * width);
            io.extend_from_slice(&out_a);
            io.extend_from_slice(&out_b);
            let enc = Encoding::with_inputs(&mut solver, &abs, &io);
            materialize(&mut solver, &abs, &enc)
        } else {
            Vec::new()
        };

        Miter {
            solver,
            inputs,
            diff_any,
            dist_bits,
            last_witness: None,
        }
    }

    /// Shared primary-input variables (index = circuit input index).
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// The literal asserting *some output differs*; pass it as an
    /// assumption (or inside a scope) — it is never asserted globally.
    pub fn differs(&self) -> SatLit {
        self.diff_any.positive()
    }

    /// Whether error distances are decodable (1..=63 outputs).
    pub fn has_distance(&self) -> bool {
        !self.dist_bits.is_empty()
    }

    /// Reads the input assignment of the current model (LSB of the model
    /// as the solver saw it; unassigned pure inputs default to their saved
    /// phase, which is a valid completion).
    pub fn model_inputs(&self) -> Vec<bool> {
        self.inputs
            .iter()
            .map(|&v| self.solver.model_value(v))
            .collect()
    }

    /// Reads |A - B| from the current model.
    ///
    /// # Panics
    ///
    /// Panics if distances are not decodable ([`Self::has_distance`]).
    pub fn model_distance(&self) -> u64 {
        assert!(self.has_distance(), "distance undecodable (>63 outputs)");
        let mut d = 0u64;
        for (i, &bit) in self.dist_bits.iter().enumerate() {
            d |= u64::from(self.solver.model_value(bit)) << i;
        }
        d
    }

    /// Is there an input with error distance strictly greater than `t`?
    ///
    /// Encodes a `> t` comparator inside a fresh solver scope (retracted
    /// before returning), so repeated queries reuse learned clauses. On
    /// `Sat`, [`Self::model_distance`] / [`Self::model_inputs`] expose a
    /// witness. A budgeted solver (see [`Solver::set_budget`]) may answer
    /// [`SatResult::Unknown`]; the scope is still popped and the miter
    /// stays usable.
    ///
    /// # Panics
    ///
    /// Panics if distances are not decodable ([`Self::has_distance`]).
    pub fn distance_exceeds(&mut self, t: u64) -> SatResult {
        assert!(self.has_distance(), "distance undecodable (>63 outputs)");
        let width = self.dist_bits.len();
        if t >> width != 0 {
            return SatResult::Unsat; // |A - B| < 2^width <= t + 1
        }
        self.solver.push_scope();
        let cmp = gt_const_aig(width, t);
        let enc = Encoding::with_inputs(&mut self.solver, &cmp, &self.dist_bits);
        let gt = enc.sat_lit(cmp.outputs()[0].lit);
        let result = self.solver.solve_with_assumptions(&[gt]);
        // Read the witness *before* popping: the pop backtracks the trail.
        let witness = match result {
            SatResult::Sat => Some((self.model_distance(), self.model_inputs())),
            SatResult::Unsat | SatResult::Unknown => None,
        };
        self.solver.pop_scope();
        self.last_witness = witness;
        result
    }

    /// Certifies the exact maximum error distance by binary search on
    /// [`Self::distance_exceeds`]. Every `Sat` answer tightens the lower
    /// bound to the *witnessed* distance, so the search typically needs
    /// far fewer than `width` queries.
    ///
    /// With a budgeted solver the search can be cut short by an `Unknown`
    /// answer; it then stops and reports an **incomplete** certificate.
    /// The interval it carries is still sound: `max_distance` is a proven
    /// upper bound (from `Unsat` answers or the trivial `2^width − 1`) and
    /// `lower_bound` a witnessed, achievable distance.
    ///
    /// # Panics
    ///
    /// Panics if distances are not decodable ([`Self::has_distance`]).
    pub fn certify_max_distance(&mut self) -> WceCertificate {
        assert!(self.has_distance(), "distance undecodable (>63 outputs)");
        let width = self.dist_bits.len() as u32;
        let mut lo = 0u64; // a witnessed, achievable distance
        let mut hi = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }; // invariant: max distance <= hi
        let mut queries = 0u64;
        let mut witness = None;
        let mut complete = true;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            queries += 1;
            match self.distance_exceeds(mid) {
                SatResult::Sat => {
                    let (d, inputs) = self
                        .last_witness
                        .take()
                        .expect("Sat distance query leaves a witness");
                    debug_assert!(d > mid, "witness must exceed the bound");
                    lo = d.max(mid + 1);
                    witness = Some(inputs);
                }
                SatResult::Unsat => hi = mid,
                SatResult::Unknown => {
                    complete = false;
                    break;
                }
            }
        }
        WceCertificate {
            max_distance: hi,
            lower_bound: lo.min(hi),
            complete,
            queries,
            witness,
        }
    }
}

/// Result of a WCE certification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WceCertificate {
    /// The maximum error distance over all inputs: exact when
    /// [`Self::complete`], otherwise a proven upper bound.
    pub max_distance: u64,
    /// A witnessed, achievable distance (equals [`Self::max_distance`]
    /// when the search completed).
    pub lower_bound: u64,
    /// Whether the binary search ran to completion. `false` only when a
    /// solver budget cut a query short ([`SatResult::Unknown`]).
    pub complete: bool,
    /// Number of `distance > t` SAT queries the binary search issued.
    pub queries: u64,
    /// An input assignment achieving [`Self::lower_bound`] (None iff it
    /// is 0).
    pub witness: Option<Vec<bool>>,
}

/// Materializes each output literal of `aig` (under `enc`) into a fresh
/// solver variable with two equivalence clauses.
fn materialize(solver: &mut Solver, aig: &Aig, enc: &Encoding) -> Vec<Var> {
    aig.outputs()
        .iter()
        .map(|out| {
            let lit = enc.sat_lit(out.lit);
            let v = solver.new_var();
            solver.add_clause(&[v.negative(), lit]);
            solver.add_clause(&[v.positive(), !lit]);
            v
        })
        .collect()
}

/// Builds the combinational |A - B| circuit over 2×`width` inputs
/// (A bits first, then B bits, both LSB first), `width` outputs.
///
/// Two ripple borrow-subtractors compute A−B and B−A; the borrow-out of
/// A−B selects which one is the magnitude (borrow set ⇔ A < B).
fn abs_diff_aig(width: usize) -> Aig {
    let mut aig = Aig::new("abs_diff");
    let a = aig.add_inputs("a", width);
    let b = aig.add_inputs("b", width);
    let (ab, ab_borrow) = subtract(&mut aig, &a, &b);
    let (ba, _) = subtract(&mut aig, &b, &a);
    for i in 0..width {
        let bit = aig.mux(ab_borrow, ba[i], ab[i]);
        aig.add_output(format!("d{i}"), bit);
    }
    aig
}

/// Ripple borrow-subtractor: returns (x − y mod 2^width, borrow-out).
fn subtract(aig: &mut Aig, x: &[Lit], y: &[Lit]) -> (Vec<Lit>, Lit) {
    let mut borrow = Lit::FALSE;
    let mut out = Vec::with_capacity(x.len());
    for (&xi, &yi) in x.iter().zip(y) {
        let xy = aig.xor(xi, yi);
        out.push(aig.xor(xy, borrow));
        // borrow_out = (!x & y) | (xnor(x, y) & borrow_in)
        let lend = aig.and(!xi, yi);
        let keep = aig.and(!xy, borrow);
        borrow = aig.or(lend, keep);
    }
    (out, borrow)
}

/// Builds a comparator circuit: one output, true iff the `width`-bit
/// little-endian input value is strictly greater than the constant `t`.
fn gt_const_aig(width: usize, t: u64) -> Aig {
    let mut aig = Aig::new("gt_const");
    let bits = aig.add_inputs("v", width);
    // MSB-first: gt accumulates "already greater on a higher bit while all
    // bits above agreed"; eq accumulates "all bits so far agree with t".
    let mut gt = Lit::FALSE;
    let mut eq = Lit::TRUE;
    for i in (0..width).rev() {
        let ti = t >> i & 1 != 0;
        if !ti {
            let here = aig.and(eq, bits[i]);
            gt = aig.or(gt, here);
        }
        // eq &= (bits[i] == ti)
        let agree = bits[i].complement_if(!ti);
        eq = aig.and(eq, agree);
    }
    aig.add_output("gt", gt);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_u64(aig: &Aig, inputs: &[bool]) -> u64 {
        aig.evaluate(inputs)
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn abs_diff_circuit_is_exact() {
        let width = 4;
        let aig = abs_diff_aig(width);
        for a in 0u64..16 {
            for b in 0u64..16 {
                let mut inputs = Vec::with_capacity(2 * width);
                for i in 0..width {
                    inputs.push(a >> i & 1 != 0);
                }
                for i in 0..width {
                    inputs.push(b >> i & 1 != 0);
                }
                assert_eq!(eval_u64(&aig, &inputs), a.abs_diff(b), "|{a}-{b}|");
            }
        }
    }

    #[test]
    fn gt_const_circuit_is_exact() {
        let width = 4;
        for t in 0u64..16 {
            let aig = gt_const_aig(width, t);
            for v in 0u64..16 {
                let inputs: Vec<bool> = (0..width).map(|i| v >> i & 1 != 0).collect();
                assert_eq!(aig.evaluate(&inputs)[0], v > t, "{v} > {t}");
            }
        }
    }

    #[test]
    fn identical_circuits_never_differ() {
        let a = alsrac_circuits::arith::ripple_carry_adder(3);
        let mut miter = Miter::new(&a, &a.clone());
        let differs = miter.differs();
        assert_eq!(
            miter.solver.solve_with_assumptions(&[differs]),
            SatResult::Unsat
        );
        let cert = miter.certify_max_distance();
        assert_eq!(cert.max_distance, 0);
        assert_eq!(cert.witness, None);
    }

    #[test]
    fn wce_matches_exhaustive_evaluation() {
        let original = alsrac_circuits::arith::ripple_carry_adder(3);
        let mut approx = original.clone();
        // Drop the top sum bit: distance spikes when that bit is set.
        let last = approx.num_outputs() - 1;
        approx.set_output_lit(last, Lit::FALSE);

        let n = original.num_inputs();
        let mut want = 0u64;
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            let d = eval_u64(&original, &bits).abs_diff(eval_u64(&approx, &bits));
            want = want.max(d);
        }

        let mut miter = Miter::new(&original, &approx);
        let cert = miter.certify_max_distance();
        assert_eq!(cert.max_distance, want);
        let witness = cert.witness.expect("nonzero distance has a witness");
        let d = eval_u64(&original, &witness).abs_diff(eval_u64(&approx, &witness));
        assert_eq!(d, want, "witness must achieve the maximum");
    }

    #[test]
    fn complete_certificates_have_matching_bounds() {
        let original = alsrac_circuits::arith::ripple_carry_adder(3);
        let mut approx = original.clone();
        approx.set_output_lit(0, Lit::FALSE);
        let mut miter = Miter::new(&original, &approx);
        let cert = miter.certify_max_distance();
        assert!(cert.complete);
        assert_eq!(cert.lower_bound, cert.max_distance);
    }

    #[test]
    fn budget_starved_wce_search_reports_a_sound_interval() {
        use alsrac_rt::budget::Budget;
        let original = alsrac_circuits::arith::ripple_carry_adder(3);
        let mut approx = original.clone();
        let last = approx.num_outputs() - 1;
        approx.set_output_lit(last, Lit::FALSE);
        let mut reference = Miter::new(&original, &approx);
        let exact = reference.certify_max_distance();
        assert!(exact.complete);

        let mut miter = Miter::new(&original, &approx);
        // Every query answers Unknown: the search must stop immediately
        // with the trivial-but-sound interval, not loop or lie.
        miter
            .solver
            .set_budget(Budget::default().with_sat_propagations(0));
        let cert = miter.certify_max_distance();
        assert!(!cert.complete);
        assert!(cert.lower_bound <= exact.max_distance);
        assert!(cert.max_distance >= exact.max_distance, "upper bound sound");
        assert_eq!(miter.solver.scope_depth(), 0);
        // Clearing the budget, the same miter finishes the job.
        miter.solver.clear_budget();
        let again = miter.certify_max_distance();
        assert!(again.complete);
        assert_eq!(again.max_distance, exact.max_distance);
    }

    #[test]
    fn distance_queries_are_repeatable_after_scope_pops() {
        let original = alsrac_circuits::arith::ripple_carry_adder(2);
        let mut approx = original.clone();
        approx.set_output_lit(0, Lit::FALSE);
        let mut miter = Miter::new(&original, &approx);
        let first = miter.certify_max_distance();
        let second = miter.certify_max_distance();
        assert_eq!(first.max_distance, second.max_distance);
        // And the plain differs() query still works on the same miter.
        let differs = miter.differs();
        assert_eq!(
            miter.solver.solve_with_assumptions(&[differs]),
            SatResult::Sat
        );
    }
}
