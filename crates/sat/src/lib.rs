//! SAT solving and equivalence checking for the ALSRAC reproduction.
//!
//! ALSRAC's selling point is being *simulation-only*: it never calls a SAT
//! or BDD engine, unlike the exact resubstitution flows it builds on
//! (Mishchenko et al. [14], [18]). To reproduce that comparison — and to
//! verify our own exact transforms beyond exhaustive simulation — this
//! crate provides:
//!
//! * [`Solver`] — a self-contained CDCL SAT solver (two-watched literals,
//!   first-UIP learning, VSIDS-style activities, restarts, phase saving);
//! * [`encode`] — Tseitin encoding of AIG cones into CNF;
//! * [`cec`] — combinational equivalence checking via a miter
//!   ([`cec::equivalent`]), and the SAT version of the paper's Theorem 1
//!   feasibility check ([`cec::exact_resub_feasible`]);
//! * [`miter`] — a reusable original-vs-approximate miter with
//!   materialized outputs and exact worst-case-error certification
//!   ([`miter::Miter::certify_max_distance`]);
//! * [`count`] — exact and (ε, δ)-approximate model counting of the
//!   differing inputs, i.e. *certified* error rates.
//!
//! # Example
//!
//! ```
//! use alsrac_sat::{Solver, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[a.positive(), b.positive()]);
//! solver.add_clause(&[a.negative(), b.negative()]);
//! assert_eq!(solver.solve(), SatResult::Sat);
//! assert_ne!(solver.model_value(a), solver.model_value(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cec;
pub mod count;
pub mod encode;
pub mod miter;
mod solver;

pub use solver::{SatLit, SatResult, Solver, Var};
