//! Optimization scripts combining the individual passes.

use alsrac_aig::Aig;

use crate::{balance, refactor, rewrite, RefactorConfig, RewriteConfig};

/// Structural sweep: constant propagation, re-hashing, dangling-node
/// removal. This is [`Aig::cleaned`], re-exported under ABC's name.
pub fn sweep(aig: &Aig) -> Aig {
    aig.cleaned()
}

/// The `resyn2`-like script: alternating balance / rewrite / refactor
/// rounds, with zero-gain variants in the later rounds, mirroring ABC's
/// `resyn2` (`b; rw; rf; b; rw; rwz; b; rfz; rwz; b`).
pub fn resyn2_lite(aig: &Aig) -> Aig {
    let rw = RewriteConfig::default();
    let rwz = RewriteConfig {
        zero_gain: true,
        ..RewriteConfig::default()
    };
    let rf = RefactorConfig::default();
    let rfz = RefactorConfig {
        zero_gain: true,
        ..RefactorConfig::default()
    };

    let mut g = balance(aig);
    g = rewrite(&g, &rw);
    g = refactor(&g, &rf);
    g = balance(&g);
    g = rewrite(&g, &rw);
    g = rewrite(&g, &rwz);
    g = balance(&g);
    g = refactor(&g, &rfz);
    g = rewrite(&g, &rwz);
    balance(&g)
}

/// The combination ALSRAC runs after each accepted change:
/// `sweep; resyn2` (Algorithm 3, line 9).
pub fn optimize(aig: &Aig) -> Aig {
    resyn2_lite(&sweep(aig))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(a: &Aig, b: &Aig) {
        let n = a.num_inputs();
        assert_eq!(n, b.num_inputs());
        assert!(n <= 12);
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p:b}");
        }
    }

    #[test]
    fn optimize_preserves_and_shrinks_cla() {
        // The flattened CLA has heavy redundancy a real optimizer must find.
        let aig = alsrac_circuits::arith::carry_lookahead_adder(5);
        let optimized = optimize(&aig);
        assert_equivalent(&aig, &optimized);
        assert!(
            optimized.num_ands() < aig.num_ands(),
            "{} -> {}",
            aig.num_ands(),
            optimized.num_ands()
        );
    }

    #[test]
    fn optimize_preserves_various_circuits() {
        for aig in [
            alsrac_circuits::arith::alu(3),
            alsrac_circuits::arith::sqrt(6),
            alsrac_circuits::control::arbiter(5),
            alsrac_circuits::control::int_to_float(6, 3, 3),
        ] {
            let optimized = optimize(&aig);
            assert_equivalent(&aig, &optimized);
            assert!(optimized.num_ands() <= aig.num_ands(), "{}", aig.name());
        }
    }

    #[test]
    fn optimize_handles_trivial_graphs() {
        let mut aig = Aig::new("buf");
        let a = aig.add_input("a");
        aig.add_output("y", !a);
        let optimized = optimize(&aig);
        assert_eq!(optimized.num_ands(), 0);
        assert_eq!(optimized.evaluate(&[true]), vec![false]);
    }
}
