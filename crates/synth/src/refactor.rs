//! Large-cone refactoring.
//!
//! Rewriting works on 4-feasible cuts; refactoring attacks larger
//! structures: for each node whose maximum fanout-free cone (MFFC) is big
//! enough, the whole cone is collapsed to a truth table over its leaves and
//! re-synthesized as a minimized factored form, substituted when smaller
//! (ABC's `refactor`).

use std::collections::HashMap;

use alsrac_aig::{Aig, Lit, Node, NodeId};
use alsrac_truthtable::{cone_tt, factored_aig_cost, isop, minimize, sop_to_aig, Tt};

/// Options for [`refactor`].
#[derive(Clone, Debug)]
pub struct RefactorConfig {
    /// Only refactor nodes whose MFFC has at least this many nodes.
    pub min_cone: usize,
    /// Skip cones with more than this many leaves (truth-table width).
    pub max_leaves: usize,
    /// Accept replacements with zero gain.
    pub zero_gain: bool,
}

impl Default for RefactorConfig {
    fn default() -> RefactorConfig {
        RefactorConfig {
            min_cone: 3,
            max_leaves: 10,
            zero_gain: false,
        }
    }
}

/// One refactoring pass. Returns the refactored (and swept) graph; the
/// result is functionally equivalent to the input.
pub fn refactor(aig: &Aig, config: &RefactorConfig) -> Aig {
    let mut work = aig.clone();
    let fanouts = work.fanout_map();
    // Decisions are collected first and materialized after the scan, so the
    // fanout map and MFFC queries always see the unmodified graph.
    let mut pending: Vec<(NodeId, alsrac_truthtable::Sop, bool, Vec<NodeId>)> = Vec::new();
    let mut claimed = vec![false; work.num_nodes()];

    // Visit large nodes first (reverse topological order) so enclosing
    // cones get priority over their sub-cones.
    let and_nodes: Vec<NodeId> = work.iter_ands().collect();
    for &id in and_nodes.iter().rev() {
        if claimed[id.index()] {
            continue;
        }
        let mffc = work.mffc(id, &fanouts);
        if mffc.len() < config.min_cone || mffc.iter().any(|n| claimed[n.index()]) {
            continue;
        }
        // Leaves: fanins of MFFC members that are not themselves members.
        let mut in_mffc = vec![false; work.num_nodes()];
        for &n in &mffc {
            in_mffc[n.index()] = true;
        }
        let mut leaves: Vec<NodeId> = Vec::new();
        for &n in &mffc {
            if let Node::And { f0, f1 } = *work.node(n) {
                for fanin in [f0.node(), f1.node()] {
                    if !in_mffc[fanin.index()] && fanin != NodeId::CONST && !leaves.contains(&fanin)
                    {
                        leaves.push(fanin);
                    }
                }
            }
        }
        if leaves.len() > config.max_leaves || leaves.is_empty() {
            continue;
        }
        leaves.sort_unstable();
        let Some(tt) = cone_tt(&work, id.lit(), &leaves) else {
            continue;
        };
        let n = tt.nvars();
        let pos = minimize(&isop(&tt, &tt), &tt, &Tt::zero(n));
        let neg_tt = tt.not();
        let neg = minimize(&isop(&neg_tt, &neg_tt), &neg_tt, &Tt::zero(n));
        let (cover, complemented, cost) = {
            let pc = factored_aig_cost(&pos, n);
            let nc = factored_aig_cost(&neg, n);
            if nc < pc {
                (neg, true, nc)
            } else {
                (pos, false, pc)
            }
        };
        let gain = mffc.len() as isize - cost as isize;
        if gain > 0 || (config.zero_gain && gain == 0) {
            for &n in &mffc {
                claimed[n.index()] = true;
            }
            pending.push((id, cover, complemented, leaves));
        }
    }

    if pending.is_empty() {
        return work.cleaned();
    }
    let mut substitutions: HashMap<NodeId, Lit> = HashMap::new();
    for (id, cover, complemented, leaves) in pending {
        let leaf_lits: Vec<Lit> = leaves.iter().map(|&l| l.lit()).collect();
        let new_lit = sop_to_aig(&mut work, &cover, &leaf_lits).complement_if(complemented);
        if new_lit.node() != id {
            substitutions.insert(id, new_lit);
        }
    }
    work.rebuilt_with_substitutions(&substitutions)
        .expect("refactor substitutions reference strict TFI cones")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(a: &Aig, b: &Aig) {
        let n = a.num_inputs();
        assert_eq!(n, b.num_inputs());
        assert!(n <= 12);
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p:b}");
        }
    }

    #[test]
    fn collapses_redundant_cone() {
        // f = (a & b) | (a & !b) == a, built wastefully.
        let mut aig = Aig::new("waste");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let t1 = aig.and(a, b);
        let t2 = aig.and(a, !b);
        let f = aig.or(t1, t2);
        let g = aig.and(f, c);
        aig.add_output("y", g);
        let refactored = refactor(&aig, &RefactorConfig::default());
        assert_equivalent(&aig, &refactored);
        assert!(
            refactored.num_ands() < aig.num_ands(),
            "{} -> {}",
            aig.num_ands(),
            refactored.num_ands()
        );
    }

    #[test]
    fn preserves_function_on_benchmarks() {
        for aig in [
            alsrac_circuits::arith::carry_lookahead_adder(4),
            alsrac_circuits::arith::alu(3),
            alsrac_circuits::control::voter(7),
            alsrac_circuits::catalog::ecc_network(6, 3),
        ] {
            let refactored = refactor(&aig, &RefactorConfig::default());
            assert_equivalent(&aig, &refactored);
        }
    }

    #[test]
    fn random_networks_survive_refactoring() {
        for seed in 0..6 {
            let aig = alsrac_circuits::random_logic::random_network(
                &alsrac_circuits::random_logic::RandomNetworkConfig {
                    num_inputs: 9,
                    num_outputs: 3,
                    num_gates: 70,
                    locality: 16,
                    seed: seed + 100,
                },
            );
            let refactored = refactor(&aig, &RefactorConfig::default());
            assert_equivalent(&aig, &refactored);
        }
    }

    #[test]
    fn respects_max_leaves() {
        let aig = alsrac_circuits::arith::wallace_multiplier(3);
        let config = RefactorConfig {
            max_leaves: 4,
            ..RefactorConfig::default()
        };
        let refactored = refactor(&aig, &config);
        assert_equivalent(&aig, &refactored);
    }
}
