//! AND-tree balancing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use alsrac_aig::{Aig, Lit, Node, NodeId};

/// Rebuilds the graph with every single-fanout conjunction chain
/// re-associated into a minimum-height tree (ABC's `balance`).
///
/// Shared nodes (reference count > 1) are kept as tree leaves so no logic
/// is duplicated; the result is functionally equivalent and never deeper
/// than the input.
pub fn balance(aig: &Aig) -> Aig {
    let fanouts = aig.fanout_map();
    let mut out = Aig::new(aig.name().to_string());
    // map[node] = balanced literal in `out`.
    let mut map: Vec<Option<Lit>> = vec![None; aig.num_nodes()];
    map[NodeId::CONST.index()] = Some(Lit::FALSE);
    for (pos, &input) in aig.inputs().iter().enumerate() {
        map[input.index()] = Some(out.add_input(aig.input_name(pos).to_string()));
    }

    // Process AND nodes in topological order; node ids are already
    // topological.
    for id in aig.iter_ands() {
        if map[id.index()].is_some() {
            continue;
        }
        // Collect the conjunction leaves of the chain rooted at `id`,
        // walking through non-complemented, single-reference AND children.
        let mut leaves: Vec<Lit> = Vec::new();
        let mut stack = vec![id.lit()];
        while let Some(lit) = stack.pop() {
            let expandable = !lit.is_complement()
                && aig.node(lit.node()).is_and()
                && (lit.node() == id || fanouts.ref_count(lit.node()) == 1);
            if expandable {
                let [f0, f1] = aig.and_fanins(lit.node());
                stack.push(f0);
                stack.push(f1);
            } else {
                leaves.push(lit);
            }
        }
        // Map leaves into the new graph. The heap is keyed by an upper
        // bound on each term's level (exact for fresh nodes; constant folds
        // and strash hits can only be shallower).
        let levels = out.levels();
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = leaves
            .iter()
            .map(|&l| {
                let mapped = map[l.node().index()]
                    .expect("leaf processed before (topological order)")
                    .complement_if(l.is_complement());
                Reverse((
                    levels.get(mapped.node().index()).copied().unwrap_or(0),
                    mapped.raw(),
                ))
            })
            .collect();
        // Huffman-style: repeatedly combine the two shallowest terms.
        while heap.len() > 1 {
            let Reverse((la, a_raw)) = heap.pop().expect("len > 1");
            let Reverse((lb, b_raw)) = heap.pop().expect("len > 1");
            let combined = out.and(Lit::from_raw(a_raw), Lit::from_raw(b_raw));
            heap.push(Reverse((la.max(lb) + 1, combined.raw())));
        }
        let root = heap
            .pop()
            .map(|Reverse((_, raw))| Lit::from_raw(raw))
            .unwrap_or(Lit::TRUE);
        map[id.index()] = Some(root);
    }

    for output in aig.outputs() {
        let mapped = match *aig.node(output.lit.node()) {
            Node::Const => Lit::FALSE,
            _ => map[output.lit.node().index()].expect("cone mapped"),
        };
        out.add_output(
            output.name.clone(),
            mapped.complement_if(output.lit.is_complement()),
        );
    }
    out.cleaned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(a: &Aig, b: &Aig) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        let n = a.num_inputs();
        assert!(n <= 12, "use sampled check for wide circuits");
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p:b}");
        }
    }

    #[test]
    fn flattens_linear_chain() {
        let mut aig = Aig::new("chain");
        let xs = aig.add_inputs("x", 8);
        // Deliberately skewed chain: depth 7.
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.and(acc, x);
        }
        aig.add_output("y", acc);
        assert_eq!(aig.depth(), 7);
        let balanced = balance(&aig);
        assert_eq!(balanced.depth(), 3);
        assert_equivalent(&aig, &balanced);
    }

    #[test]
    fn keeps_shared_subtrees() {
        let mut aig = Aig::new("shared");
        let xs = aig.add_inputs("x", 4);
        let shared = aig.and(xs[0], xs[1]);
        let left = aig.and(shared, xs[2]);
        let right = aig.and(shared, xs[3]);
        aig.add_output("l", left);
        aig.add_output("r", right);
        let balanced = balance(&aig);
        assert_equivalent(&aig, &balanced);
        // Sharing preserved: still 3 ANDs, not 4.
        assert_eq!(balanced.num_ands(), 3);
    }

    #[test]
    fn handles_complemented_chains() {
        let mut aig = Aig::new("or_chain");
        let xs = aig.add_inputs("x", 8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = aig.or(acc, x); // complemented internally
        }
        aig.add_output("y", acc);
        let balanced = balance(&aig);
        assert!(balanced.depth() <= aig.depth());
        assert_equivalent(&aig, &balanced);
    }

    #[test]
    fn constant_outputs_survive() {
        let mut aig = Aig::new("c");
        let _x = aig.add_input("x");
        aig.add_output("zero", Lit::FALSE);
        aig.add_output("one", Lit::TRUE);
        let balanced = balance(&aig);
        assert_eq!(balanced.evaluate(&[false]), vec![false, true]);
    }

    #[test]
    fn idempotent_on_balanced_tree() {
        let mut aig = Aig::new("t");
        let xs = aig.add_inputs("x", 8);
        let root = aig.and_all(&xs);
        aig.add_output("y", root);
        let once = balance(&aig);
        let twice = balance(&once);
        assert_eq!(once.num_ands(), twice.num_ands());
        assert_eq!(once.depth(), twice.depth());
    }

    #[test]
    fn never_increases_depth_on_structured_circuits() {
        for aig in [
            alsrac_circuits::arith::ripple_carry_adder(5),
            alsrac_circuits::arith::wallace_multiplier(3),
            alsrac_circuits::arith::alu(3),
        ] {
            let balanced = balance(&aig);
            assert!(
                balanced.depth() <= aig.depth(),
                "{}: {} -> {}",
                aig.name(),
                aig.depth(),
                balanced.depth()
            );
            assert_equivalent(&aig, &balanced);
        }
    }
}
