//! Traditional (exact) logic synthesis for AIGs.
//!
//! After ALSRAC applies a local approximate change, the circuit contains
//! redundancy that a conventional optimizer removes; the paper runs ABC's
//! `sweep; resyn2` at every iteration (Algorithm 3, line 9). This crate
//! reimplements the used subset from scratch:
//!
//! * **sweep** — constant propagation, structural-hash deduplication, and
//!   dangling-node removal (this is [`Aig::cleaned`], re-exported here as
//!   [`sweep`] for discoverability);
//! * **[`balance`]** — AND-tree height reduction by rebuilding conjunction
//!   chains as balanced trees (ABC `balance`);
//! * **[`rewrite`]** — 4-feasible-cut resynthesis: each cut function is
//!   re-derived as a minimized factored form and substituted when it saves
//!   nodes (ABC `rewrite`);
//! * **[`refactor`]** — large-cone resynthesis seeded at maximum
//!   fanout-free cones (ABC `refactor`);
//! * **[`resyn2_lite`]** — the round-robin script of the above mirroring
//!   ABC's `resyn2`, plus [`optimize`], the `sweep; resyn2` combination the
//!   ALSRAC flow calls.
//!
//! Every pass is *exact*: the optimized graph is functionally equivalent to
//! its input (property-tested in this crate against exhaustive
//! simulation).
//!
//! # Example
//!
//! ```
//! use alsrac_circuits::arith;
//! use alsrac_synth::optimize;
//!
//! let aig = arith::carry_lookahead_adder(8);
//! let before = aig.num_ands();
//! let optimized = optimize(&aig);
//! assert!(optimized.num_ands() <= before);
//! // Function preserved:
//! assert_eq!(optimized.evaluate(&vec![true; 16]), aig.evaluate(&vec![true; 16]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balance;
mod refactor;
mod rewrite;
mod scripts;

pub use balance::balance;
pub use refactor::{refactor, RefactorConfig};
pub use rewrite::{rewrite, RewriteConfig};
pub use scripts::{optimize, resyn2_lite, sweep};
