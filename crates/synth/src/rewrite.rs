//! Cut-based rewriting.
//!
//! For every AND node, enumerate its 4-feasible cuts, derive each cut's
//! truth table, re-synthesize the function as a minimized factored form,
//! and substitute when the replacement is smaller than the logic it frees
//! (the node's MFFC restricted to the cut cone). Replacement structures are
//! memoized per truth table, playing the role of ABC's precomputed NPN
//! library.

use std::collections::HashMap;

use alsrac_aig::{Aig, Lit, NodeId};
use alsrac_truthtable::{cone_tt, factored_aig_cost, isop, minimize, sop_to_aig, Sop, Tt};

/// Options for [`rewrite`].
#[derive(Clone, Debug)]
pub struct RewriteConfig {
    /// Cut size (ABC uses 4).
    pub cut_size: usize,
    /// Cuts kept per node during enumeration.
    pub max_cuts: usize,
    /// Accept replacements with zero gain (ABC's `rewrite -z`); useful for
    /// escaping local minima between passes.
    pub zero_gain: bool,
}

impl Default for RewriteConfig {
    fn default() -> RewriteConfig {
        RewriteConfig {
            cut_size: 4,
            max_cuts: 8,
            zero_gain: false,
        }
    }
}

/// A memoized replacement recipe: the chosen cover and polarity for a truth
/// table, plus its standalone node cost.
struct Recipe {
    cover: Sop,
    complemented: bool,
    cost: usize,
}

/// Synthesizes (and memoizes) the cheaper of `isop(f)` / `isop(!f)` as a
/// factored cover.
fn recipe_for<'c>(cache: &'c mut HashMap<Tt, Recipe>, tt: &Tt) -> &'c Recipe {
    if !cache.contains_key(tt) {
        let n = tt.nvars();
        let pos = minimize(&isop(tt, tt), tt, &Tt::zero(n));
        let neg_tt = tt.not();
        let neg = minimize(&isop(&neg_tt, &neg_tt), &neg_tt, &Tt::zero(n));
        let pos_cost = factored_aig_cost(&pos, n);
        let neg_cost = factored_aig_cost(&neg, n);
        let recipe = if neg_cost < pos_cost {
            Recipe {
                cover: neg,
                complemented: true,
                cost: neg_cost,
            }
        } else {
            Recipe {
                cover: pos,
                complemented: false,
                cost: pos_cost,
            }
        };
        cache.insert(tt.clone(), recipe);
    }
    cache.get(tt).expect("just inserted")
}

/// One rewriting pass over the graph. Returns the rewritten (and swept)
/// graph; the result is functionally equivalent to the input.
pub fn rewrite(aig: &Aig, config: &RewriteConfig) -> Aig {
    let mut work = aig.clone();
    let cut_sets = work.enumerate_cuts(config.cut_size, config.max_cuts);
    let fanouts = work.fanout_map();
    let mut cache: HashMap<Tt, Recipe> = HashMap::new();
    // Decisions are collected first and materialized after the scan, so
    // cut/fanout/MFFC queries always see the unmodified graph.
    let mut pending: Vec<(NodeId, Sop, bool, Vec<NodeId>)> = Vec::new();
    // Nodes already freed by an accepted substitution this pass: their
    // savings must not be double-counted by enclosing cones.
    let mut claimed = vec![false; work.num_nodes()];

    let and_nodes: Vec<NodeId> = work.iter_ands().collect();
    for &id in &and_nodes {
        if claimed[id.index()] {
            continue;
        }
        let mut best: Option<(isize, Vec<NodeId>, bool, Sop)> = None;
        for cut in cut_sets[id.index()].nontrivial() {
            if cut.len() < 2 {
                continue;
            }
            let Some(tt) = cone_tt(&work, id.lit(), cut.leaves()) else {
                continue;
            };
            // Savings: interior nodes of the cone that are referenced only
            // from inside it (the cut-local MFFC), none already claimed.
            let Some(interior) = work.cone_interior(id, cut.leaves()) else {
                continue;
            };
            let mffc = cut_local_mffc(&work, id, &interior, &fanouts);
            if mffc.iter().any(|n| claimed[n.index()]) {
                continue;
            }
            let saved = mffc.len() as isize;
            let recipe = recipe_for(&mut cache, &tt);
            let gain = saved - recipe.cost as isize;
            let acceptable = gain > 0 || (config.zero_gain && gain == 0);
            if acceptable && best.as_ref().is_none_or(|(g, ..)| gain > *g) {
                best = Some((
                    gain,
                    cut.leaves().to_vec(),
                    recipe.complemented,
                    recipe.cover.clone(),
                ));
            }
        }
        if let Some((_gain, leaves, complemented, cover)) = best {
            // Claim the freed nodes so overlapping cones don't recount them.
            let interior = work
                .cone_interior(id, &leaves)
                .expect("cut validated above");
            for n in cut_local_mffc(&work, id, &interior, &fanouts) {
                claimed[n.index()] = true;
            }
            pending.push((id, cover, complemented, leaves));
        }
    }

    if pending.is_empty() {
        return work.cleaned();
    }
    let mut substitutions: HashMap<NodeId, Lit> = HashMap::new();
    for (id, cover, complemented, leaves) in pending {
        let leaf_lits: Vec<Lit> = leaves.iter().map(|&n| n.lit()).collect();
        let new_lit = sop_to_aig(&mut work, &cover, &leaf_lits).complement_if(complemented);
        if new_lit.node() != id {
            substitutions.insert(id, new_lit);
        }
    }
    work.rebuilt_with_substitutions(&substitutions)
        .expect("rewrite substitutions reference strict TFI cones")
}

/// The nodes of `interior` (a cone of `root`) that become dangling when the
/// root is replaced: every reference to them comes from inside the cone.
fn cut_local_mffc(
    aig: &Aig,
    root: NodeId,
    interior: &[NodeId],
    fanouts: &alsrac_aig::FanoutMap,
) -> Vec<NodeId> {
    let mut in_cone = vec![false; aig.num_nodes()];
    for &n in interior {
        in_cone[n.index()] = true;
    }
    // Iterate to a fixed point: a node is freed if it is the root or all of
    // its fanouts are freed cone members (and it drives no output).
    let mut freed = vec![false; aig.num_nodes()];
    freed[root.index()] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for &n in interior.iter().rev() {
            if freed[n.index()] || n == root {
                continue;
            }
            let all_consumers_freed = fanouts.fanouts(n).iter().all(|f| freed[f.index()])
                && fanouts.ref_count(n)
                    == fanouts
                        .fanouts(n)
                        .iter()
                        .map(|f| {
                            let [f0, f1] = aig.and_fanins(*f);
                            (f0.node() == n) as u32 + (f1.node() == n) as u32
                        })
                        .sum::<u32>();
            if all_consumers_freed {
                freed[n.index()] = true;
                changed = true;
            }
        }
    }
    interior
        .iter()
        .copied()
        .filter(|n| freed[n.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(a: &Aig, b: &Aig) {
        let n = a.num_inputs();
        assert_eq!(n, b.num_inputs());
        assert!(n <= 12);
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p:b}");
        }
    }

    #[test]
    fn rewrite_shrinks_redundant_xor_ladder() {
        // xor built the wasteful way: (a|b) & !(a&b) twice over.
        let mut aig = Aig::new("waste");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let or1 = aig.or(a, b);
        let nand1 = !aig.and(a, b);
        let x1 = aig.and(or1, nand1);
        let or2 = aig.or(x1, a);
        let nand2 = !aig.and(x1, a);
        let x2 = aig.and(or2, nand2);
        aig.add_output("y", x2);
        let rewritten = rewrite(&aig, &RewriteConfig::default());
        assert!(rewritten.num_ands() <= aig.num_ands());
        assert_equivalent(&aig, &rewritten);
    }

    #[test]
    fn rewrite_preserves_function_on_benchmarks() {
        for aig in [
            alsrac_circuits::arith::ripple_carry_adder(4),
            alsrac_circuits::arith::alu(3),
            alsrac_circuits::arith::wallace_multiplier(3),
            alsrac_circuits::control::voter(7),
        ] {
            let rewritten = rewrite(&aig, &RewriteConfig::default());
            assert!(
                rewritten.num_ands() <= aig.num_ands(),
                "{} grew: {} -> {}",
                aig.name(),
                aig.num_ands(),
                rewritten.num_ands()
            );
            assert_equivalent(&aig, &rewritten);
        }
    }

    #[test]
    fn zero_gain_mode_preserves_function() {
        let aig = alsrac_circuits::arith::kogge_stone_adder(4);
        let config = RewriteConfig {
            zero_gain: true,
            ..RewriteConfig::default()
        };
        let rewritten = rewrite(&aig, &config);
        assert_equivalent(&aig, &rewritten);
        assert!(rewritten.num_ands() <= aig.num_ands());
    }

    #[test]
    fn random_networks_survive_rewriting() {
        for seed in 0..6 {
            let aig = alsrac_circuits::random_logic::random_network(
                &alsrac_circuits::random_logic::RandomNetworkConfig {
                    num_inputs: 8,
                    num_outputs: 4,
                    num_gates: 80,
                    locality: 20,
                    seed,
                },
            );
            let rewritten = rewrite(&aig, &RewriteConfig::default());
            assert_equivalent(&aig, &rewritten);
        }
    }

    #[test]
    fn rewrite_is_stable_at_fixpoint() {
        let aig = alsrac_circuits::arith::ripple_carry_adder(4);
        let once = rewrite(&aig, &RewriteConfig::default());
        let twice = rewrite(&once, &RewriteConfig::default());
        assert!(twice.num_ands() <= once.num_ands());
        assert_equivalent(&once, &twice);
    }
}
